#include "src/cfg/cfg.h"

#include <algorithm>
#include <cctype>
#include <map>

#include "src/support/governor.h"

namespace refscan {

namespace {

// Condition wrappers that are transparent for error classification.
bool IsTransparentWrapper(std::string_view callee) {
  return callee == "unlikely" || callee == "likely" || callee == "WARN_ON" ||
         callee == "WARN_ON_ONCE";
}

bool IsErrorReturningIdent(std::string_view name) {
  return name == "ret" || name == "err" || name == "error" || name == "rc" || name == "retval" ||
         name == "status";
}

bool IsNullLiteral(const Expr& e) {
  if (e.kind == Expr::Kind::kIdent && e.value == "NULL") {
    return true;
  }
  return e.kind == Expr::Kind::kLiteral && e.value == "0";
}

}  // namespace

bool IsErrorLabel(std::string_view label) {
  static constexpr std::string_view kPrefixes[] = {"err",     "out",  "fail", "cleanup",
                                                   "unwind",  "bail", "exit", "free",
                                                   "release", "undo", "abort"};
  const std::string lower = [&] {
    std::string s(label);
    for (char& c : s) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    return s;
  }();
  for (std::string_view p : kPrefixes) {
    if (std::string_view(lower).starts_with(p)) {
      return true;
    }
  }
  return false;
}

int ClassifyErrorCondition(const Expr& cond) {
  switch (cond.kind) {
    case Expr::Kind::kUnary:
      if (cond.value == "!" && !cond.args.empty() && cond.args[0] != nullptr) {
        // `if (!ptr)` — but `if (!failed)` style double negation is rare in
        // kernel code; treat uniformly.
        return 1;
      }
      return 0;
    case Expr::Kind::kBinary: {
      if (cond.args.size() < 2 || cond.args[0] == nullptr || cond.args[1] == nullptr) {
        return 0;
      }
      const Expr& lhs = *cond.args[0];
      const Expr& rhs = *cond.args[1];
      const bool rhs_zero = rhs.kind == Expr::Kind::kLiteral && rhs.value == "0";
      if (cond.value == "<" && rhs_zero) {
        return 1;  // ret < 0
      }
      if (cond.value == ">=" && rhs_zero) {
        return -1;  // ret >= 0 guards the good path
      }
      if (cond.value == "==" && IsNullLiteral(rhs)) {
        return 1;  // ptr == NULL
      }
      if (cond.value == "!=" && IsNullLiteral(rhs)) {
        return -1;  // ptr != NULL guards the good path
      }
      if (cond.value == "&&" || cond.value == "||") {
        const int l = ClassifyErrorCondition(lhs);
        if (l != 0) {
          return l;
        }
        return ClassifyErrorCondition(rhs);
      }
      return 0;
    }
    case Expr::Kind::kCall: {
      const Symbol callee = cond.CalleeName();
      if (callee == "IS_ERR" || callee == "IS_ERR_OR_NULL") {
        return 1;
      }
      if (IsTransparentWrapper(callee.view()) && cond.args.size() > 1 &&
          cond.args[1] != nullptr) {
        return ClassifyErrorCondition(*cond.args[1]);
      }
      return 0;
    }
    case Expr::Kind::kIdent:
      // `if (ret)` — error when a status variable is truthy.
      return IsErrorReturningIdent(cond.value.view()) ? 1 : 0;
    default:
      return 0;
  }
}

bool ReturnsErrorCode(const Stmt& stmt) {
  if (stmt.kind != Stmt::Kind::kReturn || stmt.expr == nullptr) {
    return false;
  }
  const Expr& e = *stmt.expr;
  if (e.kind == Expr::Kind::kUnary && e.value == "-" && !e.args.empty() && e.args[0] != nullptr) {
    const Expr& inner = *e.args[0];
    if (inner.kind == Expr::Kind::kLiteral) {
      return true;  // return -1;
    }
    if (inner.kind == Expr::Kind::kIdent && !inner.value.empty() &&
        inner.value.view()[0] == 'E') {
      return true;  // return -EINVAL;
    }
  }
  if (e.kind == Expr::Kind::kCall) {
    const Symbol callee = e.CalleeName();
    return callee == "ERR_PTR" || callee == "ERR_CAST";
  }
  if (e.kind == Expr::Kind::kIdent && IsErrorReturningIdent(e.value.view())) {
    // `return ret;` under an error guard; callers check the guard, we accept.
    return false;
  }
  return false;
}

namespace {

// Small-buffer list of node indices for CFG lowering. Nearly every
// statement has one predecessor and one exit, so the std::vector<int>
// that Lower used to pass/return by value spent the whole build in the
// allocator; four inline slots cover all but pathological branch fans.
class IntList {
 public:
  IntList() = default;
  IntList(std::initializer_list<int> il) {
    for (int v : il) {
      push_back(v);
    }
  }
  IntList(IntList&& o) noexcept { MoveFrom(o); }
  IntList& operator=(IntList&& o) noexcept {
    if (this != &o) {
      Free();
      MoveFrom(o);
    }
    return *this;
  }
  IntList(const IntList&) = delete;
  IntList& operator=(const IntList&) = delete;
  ~IntList() { Free(); }

  void push_back(int v) {
    if (size_ == cap_) {
      Grow();
    }
    data_[size_++] = v;
  }
  void append(const IntList& o) {
    for (uint32_t i = 0; i < o.size_; ++i) {
      push_back(o.data_[i]);
    }
  }
  bool empty() const { return size_ == 0; }
  const int* begin() const { return data_; }
  const int* end() const { return data_ + size_; }

 private:
  void MoveFrom(IntList& o) {
    if (o.data_ == o.inline_) {
      data_ = inline_;
      cap_ = kInline;
      size_ = o.size_;
      for (uint32_t i = 0; i < size_; ++i) {
        inline_[i] = o.inline_[i];
      }
    } else {
      data_ = o.data_;
      cap_ = o.cap_;
      size_ = o.size_;
      o.data_ = o.inline_;
      o.cap_ = kInline;
    }
    o.size_ = 0;
  }
  void Free() {
    if (data_ != inline_) {
      delete[] data_;
    }
  }
  void Grow() {
    const uint32_t new_cap = cap_ * 2;
    int* fresh = new int[new_cap];
    for (uint32_t i = 0; i < size_; ++i) {
      fresh[i] = data_[i];
    }
    Free();
    data_ = fresh;
    cap_ = new_cap;
  }

  static constexpr uint32_t kInline = 4;
  int inline_[kInline];
  int* data_ = inline_;
  uint32_t size_ = 0;
  uint32_t cap_ = kInline;
};

}  // namespace

// Note: not in an anonymous namespace — Cfg befriends refscan::CfgBuilder.
class CfgBuilder {
 public:
  explicit CfgBuilder(const FunctionDef& fn) {
    cfg_.fn_ = &fn;
    cfg_.entry_ = NewNode(CfgNode::Kind::kEntry, nullptr, fn.line);
    cfg_.exit_ = NewNode(CfgNode::Kind::kExit, nullptr, fn.line);
  }

  Cfg Build() {
    IntList exits = {cfg_.entry_};
    if (cfg_.fn_->body != nullptr) {
      exits = Lower(*cfg_.fn_->body, std::move(exits));
    }
    for (int e : exits) {
      Link(e, cfg_.exit_);
    }
    ResolveGotos();
    return std::move(cfg_);
  }

 private:
  int NewNode(CfgNode::Kind kind, const Stmt* stmt, uint32_t line,
              const Expr* expr = nullptr) {
    CfgNode node;
    node.kind = kind;
    node.stmt = stmt;
    node.expr = expr;
    node.line = line;
    node.is_error_context = error_depth_ > 0;
    node.macro_loop = macro_loops_.empty() ? -1 : macro_loops_.back();
    node.any_loop = any_loops_.empty() ? -1 : any_loops_.back();
    cfg_.nodes_.push_back(std::move(node));
    return static_cast<int>(cfg_.nodes_.size() - 1);
  }

  void Link(int from, int to) {
    auto& succs = cfg_.nodes_[static_cast<size_t>(from)].succs;
    if (std::find(succs.begin(), succs.end(), to) == succs.end()) {
      succs.push_back(to);
    }
  }

  void LinkAll(const IntList& preds, int to) {
    for (int p : preds) {
      Link(p, to);
    }
  }

  // True if the branch statement is "error-handling shaped" even without an
  // error-shaped condition: it (almost) immediately returns an error code or
  // jumps to an error label.
  static bool BranchLooksLikeErrorPath(const Stmt& branch) {
    bool found = false;
    int statements = 0;
    ForEachStmt(branch, [&](const Stmt& s) {
      if (s.kind != Stmt::Kind::kCompound && s.kind != Stmt::Kind::kEmpty) {
        ++statements;
      }
      if (ReturnsErrorCode(s)) {
        found = true;
      }
      if (s.kind == Stmt::Kind::kGoto && IsErrorLabel(s.name.view())) {
        found = true;
      }
    });
    return found && statements <= 4;
  }

  IntList LowerSeq(const ArenaVec<StmtPtr>& stmts, IntList preds) {
    // Track error-label regions: statements after an `err:`-style label in
    // the same sequence are error context until a non-error label appears.
    bool label_error_region = false;
    for (const StmtPtr s : stmts) {
      if (s == nullptr) {
        continue;
      }
      if (s->kind == Stmt::Kind::kLabel) {
        label_error_region = IsErrorLabel(s->name.view());
      }
      if (label_error_region) {
        ++error_depth_;
      }
      preds = Lower(*s, std::move(preds));
      if (label_error_region) {
        --error_depth_;
      }
    }
    return preds;
  }

  IntList Lower(const Stmt& s, IntList preds) {
    CheckDeadline("cfg");
    switch (s.kind) {
      case Stmt::Kind::kCompound:
        return LowerSeq(s.stmts, std::move(preds));

      case Stmt::Kind::kEmpty:
        return preds;

      case Stmt::Kind::kExpr:
      case Stmt::Kind::kDecl:
      case Stmt::Kind::kError:
      case Stmt::Kind::kCase:
      case Stmt::Kind::kDefault: {
        const int n = NewNode(CfgNode::Kind::kStatement, &s, s.line, s.expr);
        LinkAll(preds, n);
        return {n};
      }

      case Stmt::Kind::kLabel: {
        const int n = NewNode(CfgNode::Kind::kStatement, &s, s.line);
        LinkAll(preds, n);
        labels_[s.name] = n;
        return {n};
      }

      case Stmt::Kind::kGoto: {
        const int n = NewNode(CfgNode::Kind::kStatement, &s, s.line);
        LinkAll(preds, n);
        pending_gotos_.emplace_back(n, s.name);
        return {};
      }

      case Stmt::Kind::kReturn: {
        const int n = NewNode(CfgNode::Kind::kStatement, &s, s.line, s.expr);
        LinkAll(preds, n);
        Link(n, cfg_.exit_);
        return {};
      }

      case Stmt::Kind::kBreak: {
        const int n = NewNode(CfgNode::Kind::kStatement, &s, s.line);
        LinkAll(preds, n);
        if (!break_sinks_.empty()) {
          break_sinks_.back()->push_back(n);
        }
        return {};
      }

      case Stmt::Kind::kContinue: {
        const int n = NewNode(CfgNode::Kind::kStatement, &s, s.line);
        LinkAll(preds, n);
        if (!continue_targets_.empty()) {
          Link(n, continue_targets_.back());
        }
        return {};
      }

      case Stmt::Kind::kIf:
        return LowerIf(s, std::move(preds));

      case Stmt::Kind::kWhile: {
        const int cond = NewNode(CfgNode::Kind::kCondition, &s, s.line, s.expr);
        LinkAll(preds, cond);
        IntList breaks;
        break_sinks_.push_back(&breaks);
        continue_targets_.push_back(cond);
        any_loops_.push_back(cond);
        IntList body_exits = s.body ? Lower(*s.body, {cond}) : IntList{cond};
        any_loops_.pop_back();
        continue_targets_.pop_back();
        break_sinks_.pop_back();
        LinkAll(body_exits, cond);
        IntList exits = {cond};
        exits.append(breaks);
        return exits;
      }

      case Stmt::Kind::kDoWhile: {
        const int cond = NewNode(CfgNode::Kind::kCondition, &s, s.line, s.expr);
        IntList breaks;
        break_sinks_.push_back(&breaks);
        continue_targets_.push_back(cond);
        any_loops_.push_back(cond);
        IntList body_exits =
            s.body ? Lower(*s.body, std::move(preds)) : std::move(preds);
        any_loops_.pop_back();
        continue_targets_.pop_back();
        break_sinks_.pop_back();
        LinkAll(body_exits, cond);
        // Back edge: re-run the body once (bounded by path enumeration).
        if (s.body != nullptr && !cfg_.nodes_[static_cast<size_t>(cond)].succs.empty()) {
          // no-op: back edge added below via first body node is implicit;
        }
        IntList exits = {cond};
        exits.append(breaks);
        return exits;
      }

      case Stmt::Kind::kFor: {
        IntList p = std::move(preds);
        if (s.init != nullptr) {
          const int init = NewNode(CfgNode::Kind::kStatement, &s, s.line, s.init);
          LinkAll(p, init);
          p = {init};
        }
        const int cond = NewNode(CfgNode::Kind::kCondition, &s, s.line, s.expr);
        LinkAll(p, cond);
        IntList breaks;
        break_sinks_.push_back(&breaks);
        continue_targets_.push_back(cond);
        any_loops_.push_back(cond);
        IntList body_exits = s.body ? Lower(*s.body, {cond}) : IntList{cond};
        any_loops_.pop_back();
        continue_targets_.pop_back();
        break_sinks_.pop_back();
        LinkAll(body_exits, cond);  // increment folded into the back edge
        IntList exits = {cond};
        exits.append(breaks);
        return exits;
      }

      case Stmt::Kind::kMacroLoop: {
        const int head = NewNode(CfgNode::Kind::kLoopHead, &s, s.line, s.expr);
        LinkAll(preds, head);
        IntList breaks;
        break_sinks_.push_back(&breaks);
        continue_targets_.push_back(head);
        macro_loops_.push_back(head);
        any_loops_.push_back(head);
        IntList body_exits = s.body ? Lower(*s.body, {head}) : IntList{head};
        any_loops_.pop_back();
        macro_loops_.pop_back();
        continue_targets_.pop_back();
        break_sinks_.pop_back();
        LinkAll(body_exits, head);
        IntList exits = {head};
        exits.append(breaks);
        return exits;
      }

      case Stmt::Kind::kSwitch: {
        const int cond = NewNode(CfgNode::Kind::kCondition, &s, s.line, s.expr);
        LinkAll(preds, cond);
        IntList breaks;
        break_sinks_.push_back(&breaks);
        IntList body_exits = s.body ? Lower(*s.body, {cond}) : IntList{cond};
        break_sinks_.pop_back();
        // Each case label is also directly reachable from the condition.
        if (s.body != nullptr) {
          for (size_t i = 0; i < cfg_.nodes_.size(); ++i) {
            const CfgNode& n = cfg_.nodes_[i];
            if (n.stmt != nullptr &&
                (n.stmt->kind == Stmt::Kind::kCase || n.stmt->kind == Stmt::Kind::kDefault)) {
              // Only cases created under this switch matter; over-linking
              // nested switch cases is tolerable for path purposes.
              Link(cond, static_cast<int>(i));
            }
          }
        }
        IntList exits = std::move(body_exits);
        exits.push_back(cond);  // no-default fallthrough
        exits.append(breaks);
        return exits;
      }
    }
    return preds;
  }

  IntList LowerIf(const Stmt& s, IntList preds) {
    const int cond = NewNode(CfgNode::Kind::kCondition, &s, s.line, s.expr);
    LinkAll(preds, cond);

    int error_side = s.expr ? ClassifyErrorCondition(*s.expr) : 0;
    if (error_side == 0 && s.body != nullptr && BranchLooksLikeErrorPath(*s.body)) {
      error_side = 1;
    }
    cfg_.nodes_[static_cast<size_t>(cond)].error_branch = error_side;

    IntList exits;
    {
      if (error_side == 1) {
        ++error_depth_;
      }
      IntList then_exits = s.body ? Lower(*s.body, {cond}) : IntList{cond};
      if (error_side == 1) {
        --error_depth_;
      }
      exits.append(then_exits);
    }
    if (s.else_body != nullptr) {
      if (error_side == -1) {
        ++error_depth_;
      }
      IntList else_exits = Lower(*s.else_body, {cond});
      if (error_side == -1) {
        --error_depth_;
      }
      exits.append(else_exits);
    } else {
      exits.push_back(cond);
    }
    return exits;
  }

  void ResolveGotos() {
    for (const auto& [node, label] : pending_gotos_) {
      auto it = labels_.find(label);
      if (it != labels_.end()) {
        Link(node, it->second);
      } else {
        Link(node, cfg_.exit_);  // unresolved label: treat as function exit
      }
    }
  }

  Cfg cfg_;
  std::map<Symbol, int> labels_;  // Symbol orders by text; lookup-only anyway
  std::vector<std::pair<int, Symbol>> pending_gotos_;
  std::vector<IntList*> break_sinks_;
  std::vector<int> continue_targets_;
  std::vector<int> macro_loops_;
  std::vector<int> any_loops_;
  int error_depth_ = 0;
};

Cfg BuildCfg(const FunctionDef& fn) {
  return CfgBuilder(fn).Build();
}

}  // namespace refscan
