// Control-flow graph over the refscan AST.
//
// One CFG per function. Nodes are statement-granular (conditions get their
// own node), edges follow C control flow including goto/label resolution,
// `break`/`continue`, and macro loops (`for_each_*`). Two classifications
// that the anti-pattern checkers rely on are computed here:
//
//   * error nodes — statements inside error-handling contexts (the paper's
//     B_error): branches guarded by error-shaped conditions (`ret < 0`,
//     `!ptr`, `IS_ERR(..)`), code under `err*`/`out*`/`fail*` labels, and
//     branches that return negative error codes.
//   * loop membership — which macro loop (if any) encloses each node, used
//     by the smartloop checker (anti-pattern P3).
//
// Paths are enumerated with a bounded DFS in which every node may appear at
// most twice per path (loops execute 0/1/2 times), with global caps, which
// matches the paper's intra-procedural "potential execution path" semantics.

#ifndef REFSCAN_CFG_CFG_H_
#define REFSCAN_CFG_CFG_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/ast/ast.h"

namespace refscan {

struct CfgNode {
  enum class Kind : uint8_t {
    kEntry,
    kExit,
    kStatement,  // expression / decl / return / goto-origin etc.
    kCondition,  // if / while / for / switch condition
    kLoopHead,   // macro-loop head (carries the macro call expression)
  };

  Kind kind = Kind::kStatement;
  const Stmt* stmt = nullptr;  // null for entry/exit
  // The expression this node evaluates: the statement expression, the branch
  // condition, a for-init clause, or the macro-loop invocation. May be null
  // (labels, break, goto, empty returns).
  const Expr* expr = nullptr;
  uint32_t line = 0;
  std::vector<int> succs;

  // Error-context classification (B_error).
  bool is_error_context = false;

  // Innermost enclosing macro loop head node index, or -1.
  int macro_loop = -1;
  // Innermost enclosing loop of any kind (for/while/do/macro) head index, or -1.
  int any_loop = -1;

  // For kCondition nodes: succs[0] = true branch, succs[1] = false branch
  // (when both exist). `true_is_error` records which branch was classified
  // as the error side, -1 if neither.
  int error_branch = -1;
};

class Cfg {
 public:
  const FunctionDef* function() const { return fn_; }
  const std::vector<CfgNode>& nodes() const { return nodes_; }
  const CfgNode& node(int i) const { return nodes_[static_cast<size_t>(i)]; }
  int entry() const { return entry_; }
  int exit() const { return exit_; }
  size_t size() const { return nodes_.size(); }

  // Enumerates entry→exit paths as node-index sequences. Each node may
  // repeat at most `node_visit_cap` times per path; at most `max_paths`
  // paths are produced. Returns false if the cap truncated enumeration.
  // A template so the per-path visitor inlines: trace extraction invokes
  // this for every function and the type-erased call per path dominated
  // the check stage.
  template <typename Visit>
  bool EnumeratePaths(const Visit& visit, size_t max_paths = 2048,
                      int node_visit_cap = 2) const {
    std::vector<int> visits(nodes_.size(), 0);
    std::vector<int> path;
    size_t produced = 0;
    bool truncated = false;
    const size_t length_cap = nodes_.size() * static_cast<size_t>(node_visit_cap) + 2;

    const auto dfs = [&](const auto& self, int node) -> void {
      if (produced >= max_paths) {
        truncated = true;
        return;
      }
      if (path.size() > length_cap) {
        truncated = true;
        return;
      }
      path.push_back(node);
      ++visits[static_cast<size_t>(node)];
      if (node == exit_) {
        visit(path);
        ++produced;
      } else {
        const auto& succs = nodes_[static_cast<size_t>(node)].succs;
        if (succs.empty()) {
          // Dead end (should not happen; exit is always linked). Count as a
          // degenerate path so callers still see the prefix.
          visit(path);
          ++produced;
        }
        for (int next : succs) {
          if (visits[static_cast<size_t>(next)] < node_visit_cap) {
            self(self, next);
            if (produced >= max_paths) {
              truncated = true;
              break;
            }
          }
        }
      }
      --visits[static_cast<size_t>(node)];
      path.pop_back();
    };

    dfs(dfs, entry_);
    return !truncated;
  }

 private:
  friend class CfgBuilder;
  const FunctionDef* fn_ = nullptr;
  std::vector<CfgNode> nodes_;
  int entry_ = 0;
  int exit_ = 0;
};

// Builds the CFG for a parsed function. The function (and its AST) must
// outlive the returned CFG.
Cfg BuildCfg(const FunctionDef& fn);

// True if `label` looks like an error-handling label (err, out, fail, ...).
bool IsErrorLabel(std::string_view label);

// Classifies a condition expression as error-shaped and reports which branch
// is the error side: returns +1 if the *true* branch is the error path
// (e.g. `ret < 0`, `!ptr`, `IS_ERR(p)`), -1 if the *false* branch is
// (e.g. `ptr != NULL` guarding the good path), 0 if not error-shaped.
int ClassifyErrorCondition(const Expr& cond);

// True if `stmt` is a `return` of a negative error code (`return -EINVAL;`,
// `return -1;`, `return ERR_PTR(...)`).
bool ReturnsErrorCode(const Stmt& stmt);

}  // namespace refscan

#endif  // REFSCAN_CFG_CFG_H_
