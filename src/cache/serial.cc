#include "src/cache/serial.h"

namespace refscan {

uint64_t HashBytes(std::string_view data, uint64_t seed) {
  uint64_t hash = seed;
  for (const char c : data) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

Hash128 HashBytesDual(std::string_view data) {
  Hash128 h{0xcbf29ce484222325ull, 0x6c62272e07bb0142ull};
  for (const char c : data) {
    const uint64_t byte = static_cast<uint8_t>(c);
    h.hi = (h.hi ^ byte) * 0x100000001b3ull;
    h.lo = (h.lo ^ byte) * 0x100000001b3ull;
  }
  return h;
}

uint64_t HashMix(uint64_t hash, uint64_t value) {
  uint64_t z = hash + value + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

void ByteWriter::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void ByteWriter::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void ByteWriter::Str(std::string_view s) {
  U32(static_cast<uint32_t>(s.size()));
  out_.append(s.data(), s.size());
}

bool ByteReader::Take(size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    pos_ = data_.size();
    return false;
  }
  return true;
}

uint8_t ByteReader::U8() {
  if (!Take(1)) {
    return 0;
  }
  return static_cast<uint8_t>(data_[pos_++]);
}

uint32_t ByteReader::U32() {
  if (!Take(4)) {
    return 0;
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
  }
  return v;
}

uint64_t ByteReader::U64() {
  if (!Take(8)) {
    return 0;
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
  }
  return v;
}

std::string ByteReader::Str() {
  const uint32_t size = U32();
  if (!Take(size)) {
    return {};
  }
  std::string out(data_.substr(pos_, size));
  pos_ += size;
  return out;
}

uint32_t ByteReader::Count() {
  const uint32_t count = U32();
  if (count > data_.size() - pos_) {
    ok_ = false;
    pos_ = data_.size();
    return 0;
  }
  return count;
}

}  // namespace refscan
