#include "src/cache/cache.h"

#include <cstdio>
#include <cstring>

#include "src/cache/serial.h"
#include "src/support/faultinject.h"
#include "src/support/telemetry.h"

namespace refscan {

namespace {

// Bump whenever any serialized layout changes; stale-version objects load
// as misses and get rewritten. v2: AST identifier fields are interned
// Symbols — serialized as their text (ids are interleaving-dependent and
// never touch disk) and re-interned on load; units deserialize into a fresh
// per-unit Arena. v3: DiscoveryFacts::Field carries the field name, RefApiInfo
// carries tests_zero, and the KB snapshot/fingerprint cover the refcount-field
// and dialect-free-function registries (P10-P12, DESIGN.md §5.12). v4: units
// and report shards carry the quarantined-function list (DESIGN.md §5.15).
constexpr uint32_t kFormatVersion = 4;
constexpr char kMagic[4] = {'R', 'F', 'S', 'C'};

constexpr uint8_t kKindFacts = 1;
constexpr uint8_t kKindUnit = 2;
constexpr uint8_t kKindReports = 3;
constexpr uint8_t kKindKb = 4;

std::string HexU64(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

// ---------------------------------------------------------------------------
// DiscoveryFacts

void WriteFacts(ByteWriter& w, const DiscoveryFacts& facts) {
  w.U32(static_cast<uint32_t>(facts.structs.size()));
  for (const DiscoveryFacts::Struct& s : facts.structs) {
    w.Str(s.name);
    w.U32(static_cast<uint32_t>(s.fields.size()));
    for (const DiscoveryFacts::Field& f : s.fields) {
      w.Bool(f.direct_refcounter);
      w.Str(f.nested_tag);
      w.Str(f.name);
    }
  }
  w.U32(static_cast<uint32_t>(facts.functions.size()));
  for (const DiscoveryFacts::Function& fn : facts.functions) {
    w.Str(fn.name);
    w.Bool(fn.returns_pointer);
    w.Bool(fn.has_return_null);
    w.Bool(fn.has_error_return);
    w.I32(fn.sink_param);
    w.U32(static_cast<uint32_t>(fn.events.size()));
    for (const DiscoveryFacts::RefEvent& ev : fn.events) {
      w.Bool(ev.is_call);
      w.Str(ev.callee);
      w.I32(ev.arg1_param);
      w.Bool(ev.increase);
    }
  }
  w.U32(static_cast<uint32_t>(facts.macros.size()));
  for (const DiscoveryFacts::Macro& m : facts.macros) {
    w.Str(m.name);
    w.U32(static_cast<uint32_t>(m.params.size()));
    for (const std::string& p : m.params) {
      w.Str(p);
    }
    w.Str(m.body);
  }
}

DiscoveryFacts ReadFacts(ByteReader& r) {
  DiscoveryFacts facts;
  const uint32_t n_structs = r.Count();
  facts.structs.reserve(n_structs);
  for (uint32_t i = 0; i < n_structs && r.ok(); ++i) {
    DiscoveryFacts::Struct s;
    s.name = r.Str();
    const uint32_t n_fields = r.Count();
    s.fields.reserve(n_fields);
    for (uint32_t j = 0; j < n_fields && r.ok(); ++j) {
      DiscoveryFacts::Field f;
      f.direct_refcounter = r.Bool();
      f.nested_tag = r.Str();
      f.name = r.Str();
      s.fields.push_back(std::move(f));
    }
    facts.structs.push_back(std::move(s));
  }
  const uint32_t n_functions = r.Count();
  facts.functions.reserve(n_functions);
  for (uint32_t i = 0; i < n_functions && r.ok(); ++i) {
    DiscoveryFacts::Function fn;
    fn.name = r.Str();
    fn.returns_pointer = r.Bool();
    fn.has_return_null = r.Bool();
    fn.has_error_return = r.Bool();
    fn.sink_param = r.I32();
    const uint32_t n_events = r.Count();
    fn.events.reserve(n_events);
    for (uint32_t j = 0; j < n_events && r.ok(); ++j) {
      DiscoveryFacts::RefEvent ev;
      ev.is_call = r.Bool();
      ev.callee = r.Str();
      ev.arg1_param = r.I32();
      ev.increase = r.Bool();
      fn.events.push_back(std::move(ev));
    }
    facts.functions.push_back(std::move(fn));
  }
  const uint32_t n_macros = r.Count();
  facts.macros.reserve(n_macros);
  for (uint32_t i = 0; i < n_macros && r.ok(); ++i) {
    DiscoveryFacts::Macro m;
    m.name = r.Str();
    const uint32_t n_params = r.Count();
    m.params.reserve(n_params);
    for (uint32_t j = 0; j < n_params && r.ok(); ++j) {
      m.params.push_back(r.Str());
    }
    m.body = r.Str();
    facts.macros.push_back(std::move(m));
  }
  return facts;
}

// ---------------------------------------------------------------------------
// TranslationUnit (recursive over Expr / Stmt; nullable pointers carry a
// presence byte). Symbols serialize as their text; readers allocate nodes
// from the destination unit's Arena and re-intern on load.

void WriteExpr(ByteWriter& w, const Expr* e);
void WriteStmt(ByteWriter& w, const Stmt* s);
ExprPtr ReadExpr(ByteReader& r, Arena& arena);
StmtPtr ReadStmt(ByteReader& r, Arena& arena);

void WriteExpr(ByteWriter& w, const Expr* e) {
  w.Bool(e != nullptr);
  if (e == nullptr) {
    return;
  }
  w.U8(static_cast<uint8_t>(e->kind));
  w.U32(e->line);
  w.Str(e->value.view());
  w.Bool(e->arrow);
  w.U32(static_cast<uint32_t>(e->args.size()));
  for (const ExprPtr arg : e->args) {
    WriteExpr(w, arg);
  }
}

ExprPtr ReadExpr(ByteReader& r, Arena& arena) {
  if (!r.Bool() || !r.ok()) {
    return nullptr;
  }
  Expr* e = arena.New<Expr>();
  e->kind = static_cast<Expr::Kind>(r.U8());
  e->line = r.U32();
  e->value = Intern(r.Str());
  e->arrow = r.Bool();
  const uint32_t n = r.Count();
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    e->args.push_back(ReadExpr(r, arena), arena);
  }
  return e;
}

void WriteStmt(ByteWriter& w, const Stmt* s) {
  w.Bool(s != nullptr);
  if (s == nullptr) {
    return;
  }
  w.U8(static_cast<uint8_t>(s->kind));
  w.U32(s->line);
  w.Str(s->name.view());
  w.Str(s->type.view());
  WriteExpr(w, s->expr);
  WriteExpr(w, s->init);
  WriteExpr(w, s->incr);
  WriteStmt(w, s->body);
  WriteStmt(w, s->else_body);
  w.U32(static_cast<uint32_t>(s->stmts.size()));
  for (const StmtPtr child : s->stmts) {
    WriteStmt(w, child);
  }
}

StmtPtr ReadStmt(ByteReader& r, Arena& arena) {
  if (!r.Bool() || !r.ok()) {
    return nullptr;
  }
  Stmt* s = arena.New<Stmt>();
  s->kind = static_cast<Stmt::Kind>(r.U8());
  s->line = r.U32();
  s->name = Intern(r.Str());
  s->type = Intern(r.Str());
  s->expr = ReadExpr(r, arena);
  s->init = ReadExpr(r, arena);
  s->incr = ReadExpr(r, arena);
  s->body = ReadStmt(r, arena);
  s->else_body = ReadStmt(r, arena);
  const uint32_t n = r.Count();
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    s->stmts.push_back(ReadStmt(r, arena), arena);
  }
  return s;
}

void WriteUnit(ByteWriter& w, const TranslationUnit& unit) {
  w.Str(unit.path);
  w.U32(static_cast<uint32_t>(unit.macros.size()));
  for (const MacroDef& m : unit.macros) {
    w.Str(m.name.view());
    w.U32(static_cast<uint32_t>(m.params.size()));
    for (const Symbol p : m.params) {
      w.Str(p.view());
    }
    w.Str(m.body);
    w.U32(m.line);
  }
  w.U32(static_cast<uint32_t>(unit.structs.size()));
  for (const StructDef& s : unit.structs) {
    w.Str(s.name.view());
    w.U32(s.line);
    w.U32(static_cast<uint32_t>(s.fields.size()));
    for (const StructField& f : s.fields) {
      w.Str(f.type.view());
      w.Str(f.name.view());
    }
  }
  w.U32(static_cast<uint32_t>(unit.globals.size()));
  for (const GlobalVar& g : unit.globals) {
    w.Str(g.type.view());
    w.Str(g.name.view());
    w.U32(g.line);
    w.U32(static_cast<uint32_t>(g.inits.size()));
    for (const DesignatedInit& d : g.inits) {
      w.Str(d.field.view());
      w.Str(d.value.view());
    }
  }
  w.U32(static_cast<uint32_t>(unit.functions.size()));
  for (const FunctionDef& fn : unit.functions) {
    w.Str(fn.return_type.view());
    w.Str(fn.name.view());
    w.U32(fn.line);
    w.Bool(fn.is_static);
    w.U32(static_cast<uint32_t>(fn.params.size()));
    for (const Param& p : fn.params) {
      w.Str(p.type.view());
      w.Str(p.name.view());
    }
    WriteStmt(w, fn.body);
  }
  w.U32(static_cast<uint32_t>(unit.degraded.size()));
  for (const DegradedFunction& d : unit.degraded) {
    w.Str(d.name);
    w.U32(d.line);
    w.Str(d.what);
  }
}

TranslationUnit ReadUnit(ByteReader& r) {
  TranslationUnit unit;
  unit.arena = std::make_shared<Arena>();
  Arena& arena = *unit.arena;
  unit.path = r.Str();
  const uint32_t n_macros = r.Count();
  unit.macros.reserve(n_macros);
  for (uint32_t i = 0; i < n_macros && r.ok(); ++i) {
    MacroDef m;
    m.name = Intern(r.Str());
    const uint32_t n_params = r.Count();
    m.params.reserve(n_params);
    for (uint32_t j = 0; j < n_params && r.ok(); ++j) {
      m.params.push_back(Intern(r.Str()));
    }
    m.body = r.Str();
    m.line = r.U32();
    unit.macros.push_back(std::move(m));
  }
  const uint32_t n_structs = r.Count();
  unit.structs.reserve(n_structs);
  for (uint32_t i = 0; i < n_structs && r.ok(); ++i) {
    StructDef s;
    s.name = Intern(r.Str());
    s.line = r.U32();
    const uint32_t n_fields = r.Count();
    s.fields.reserve(n_fields);
    for (uint32_t j = 0; j < n_fields && r.ok(); ++j) {
      StructField f;
      f.type = Intern(r.Str());
      f.name = Intern(r.Str());
      s.fields.push_back(f);
    }
    unit.structs.push_back(std::move(s));
  }
  const uint32_t n_globals = r.Count();
  unit.globals.reserve(n_globals);
  for (uint32_t i = 0; i < n_globals && r.ok(); ++i) {
    GlobalVar g;
    g.type = Intern(r.Str());
    g.name = Intern(r.Str());
    g.line = r.U32();
    const uint32_t n_inits = r.Count();
    g.inits.reserve(n_inits);
    for (uint32_t j = 0; j < n_inits && r.ok(); ++j) {
      DesignatedInit d;
      d.field = Intern(r.Str());
      d.value = Intern(r.Str());
      g.inits.push_back(d);
    }
    unit.globals.push_back(std::move(g));
  }
  const uint32_t n_functions = r.Count();
  for (uint32_t i = 0; i < n_functions && r.ok(); ++i) {
    FunctionDef fn;
    fn.return_type = Intern(r.Str());
    fn.name = Intern(r.Str());
    fn.line = r.U32();
    fn.is_static = r.Bool();
    const uint32_t n_params = r.Count();
    fn.params.reserve(n_params);
    for (uint32_t j = 0; j < n_params && r.ok(); ++j) {
      Param p;
      p.type = Intern(r.Str());
      p.name = Intern(r.Str());
      fn.params.push_back(p);
    }
    fn.body = ReadStmt(r, arena);
    unit.functions.push_back(std::move(fn));
  }
  const uint32_t n_degraded = r.Count();
  unit.degraded.reserve(n_degraded);
  for (uint32_t i = 0; i < n_degraded && r.ok(); ++i) {
    DegradedFunction d;
    d.name = r.Str();
    d.line = r.U32();
    d.what = r.Str();
    unit.degraded.push_back(std::move(d));
  }
  return unit;
}

// ---------------------------------------------------------------------------
// Reports

void WriteReports(ByteWriter& w, const CachedFileReports& shard) {
  w.U64(shard.functions);
  w.U32(static_cast<uint32_t>(shard.reports.size()));
  for (const BugReport& b : shard.reports) {
    w.I32(b.anti_pattern);
    w.U8(static_cast<uint8_t>(b.impact));
    w.Str(b.file);
    w.Str(b.function);
    w.U32(b.line);
    w.U32(b.exit_line);
    w.Str(b.api);
    w.Str(b.object);
    w.Str(b.template_path);
    w.Str(b.message);
  }
  w.U32(static_cast<uint32_t>(shard.degraded.size()));
  for (const DegradedFunction& d : shard.degraded) {
    w.Str(d.name);
    w.U32(d.line);
    w.Str(d.what);
  }
}

CachedFileReports ReadReports(ByteReader& r) {
  CachedFileReports shard;
  shard.functions = r.U64();
  const uint32_t n = r.Count();
  shard.reports.reserve(n);
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    BugReport b;
    b.anti_pattern = r.I32();
    b.impact = static_cast<Impact>(r.U8());
    b.file = r.Str();
    b.function = r.Str();
    b.line = r.U32();
    b.exit_line = r.U32();
    b.api = r.Str();
    b.object = r.Str();
    b.template_path = r.Str();
    b.message = r.Str();
    shard.reports.push_back(std::move(b));
  }
  const uint32_t n_degraded = r.Count();
  shard.degraded.reserve(n_degraded);
  for (uint32_t i = 0; i < n_degraded && r.ok(); ++i) {
    DegradedFunction d;
    d.name = r.Str();
    d.line = r.U32();
    d.what = r.Str();
    shard.degraded.push_back(std::move(d));
  }
  return shard;
}

}  // namespace

// ---------------------------------------------------------------------------
// Keys and fingerprints

std::string CacheKey::Hex() const { return HexU64(hi) + HexU64(lo); }

CacheKey MakeFileKey(std::string_view path, std::string_view content, uint64_t options_fp) {
  ByteWriter w;
  w.U32(kFormatVersion);
  w.Str(path);
  w.U64(options_fp);
  const Hash128 content_hash = HashBytesDual(content);
  const Hash128 meta_hash = HashBytesDual(w.bytes());
  CacheKey key;
  key.hi = HashMix(content_hash.hi, meta_hash.hi);
  key.lo = HashMix(content_hash.lo, meta_hash.lo);
  return key;
}

CacheKey MakeKbSnapshotKey(uint64_t base_kb_fp, int nesting_threshold,
                           const std::vector<const DiscoveryFacts*>& facts, uint64_t options_fp) {
  // 16 bytes of per-file facts digest rather than the concatenated facts
  // themselves: the serialized facts already exist per file, and hashing
  // their digests keeps the key input small while still pinning content
  // and order.
  ByteWriter w;
  w.U64(base_kb_fp);
  w.I32(nesting_threshold);
  w.U32(static_cast<uint32_t>(facts.size()));
  for (const DiscoveryFacts* f : facts) {
    const Hash128 h = HashBytesDual(SerializeFacts(*f));
    w.U64(h.hi);
    w.U64(h.lo);
  }
  return MakeFileKey("<kb-snapshot>", w.bytes(), options_fp);
}

uint64_t FingerprintKnowledgeBase(const KnowledgeBase& kb) {
  ByteWriter w;
  w.U32(kFormatVersion);
  for (const auto& [name, api] : kb.apis()) {
    w.Str(name);
    w.U8(static_cast<uint8_t>(api.direction));
    w.U8(static_cast<uint8_t>(api.category));
    w.Bool(api.returns_error);
    w.Bool(api.may_return_null);
    w.Bool(api.returns_object);
    w.I32(api.object_param);
    w.I32(api.consumed_param);
    w.Bool(api.hidden);
    w.Bool(api.tests_zero);
    w.Bool(api.discovered);
  }
  for (const auto& [name, loop] : kb.smart_loops()) {
    w.Str(name);
    w.I32(loop.iterator_arg);
    w.Str(loop.embedded_api);
  }
  for (const std::string& s : kb.refcounted_structs()) {
    w.Str(s);
  }
  for (const auto& [name, param] : kb.ownership_sinks()) {
    w.Str(name);
    w.I32(param);
  }
  for (const auto& [name, params] : kb.param_derefs()) {
    w.Str(name);
    w.U32(static_cast<uint32_t>(params.size()));
    for (const int p : params) {
      w.I32(p);
    }
  }
  for (const std::string& f : kb.refcount_fields()) {
    w.Str(f);
  }
  for (const std::string& f : kb.extra_free_functions()) {
    w.Str(f);
  }
  return HashBytes(w.bytes());
}

// ---------------------------------------------------------------------------
// Public serializers

std::string SerializeFacts(const DiscoveryFacts& facts) {
  ByteWriter w;
  WriteFacts(w, facts);
  return w.TakeBytes();
}

std::optional<DiscoveryFacts> DeserializeFacts(std::string_view bytes) {
  ByteReader r(bytes);
  DiscoveryFacts facts = ReadFacts(r);
  if (!r.ok() || !r.AtEnd()) {
    return std::nullopt;
  }
  return facts;
}

std::string SerializeUnit(const TranslationUnit& unit) {
  ByteWriter w;
  WriteUnit(w, unit);
  return w.TakeBytes();
}

std::optional<TranslationUnit> DeserializeUnit(std::string_view bytes) {
  ByteReader r(bytes);
  TranslationUnit unit = ReadUnit(r);
  if (!r.ok() || !r.AtEnd()) {
    return std::nullopt;
  }
  return unit;
}

std::string SerializeReports(const CachedFileReports& reports) {
  ByteWriter w;
  WriteReports(w, reports);
  return w.TakeBytes();
}

std::optional<CachedFileReports> DeserializeReports(std::string_view bytes) {
  ByteReader r(bytes);
  CachedFileReports shard = ReadReports(r);
  if (!r.ok() || !r.AtEnd()) {
    return std::nullopt;
  }
  return shard;
}

// Field order mirrors FingerprintKnowledgeBase exactly: anything the
// fingerprint observes, the snapshot round-trips, so a deserialized KB
// fingerprints identically to the replayed one it was stored from.
std::string SerializeKb(const KnowledgeBase& kb) {
  ByteWriter w;
  w.U32(static_cast<uint32_t>(kb.apis().size()));
  for (const auto& [name, api] : kb.apis()) {
    w.Str(name);
    w.U8(static_cast<uint8_t>(api.direction));
    w.U8(static_cast<uint8_t>(api.category));
    w.Bool(api.returns_error);
    w.Bool(api.may_return_null);
    w.Bool(api.returns_object);
    w.I32(api.object_param);
    w.I32(api.consumed_param);
    w.Bool(api.hidden);
    w.Bool(api.tests_zero);
    w.Bool(api.discovered);
  }
  w.U32(static_cast<uint32_t>(kb.smart_loops().size()));
  for (const auto& [name, loop] : kb.smart_loops()) {
    w.Str(name);
    w.I32(loop.iterator_arg);
    w.Str(loop.embedded_api);
  }
  w.U32(static_cast<uint32_t>(kb.refcounted_structs().size()));
  for (const std::string& s : kb.refcounted_structs()) {
    w.Str(s);
  }
  w.U32(static_cast<uint32_t>(kb.ownership_sinks().size()));
  for (const auto& [name, param] : kb.ownership_sinks()) {
    w.Str(name);
    w.I32(param);
  }
  w.U32(static_cast<uint32_t>(kb.param_derefs().size()));
  for (const auto& [name, params] : kb.param_derefs()) {
    w.Str(name);
    w.U32(static_cast<uint32_t>(params.size()));
    for (const int p : params) {
      w.I32(p);
    }
  }
  w.U32(static_cast<uint32_t>(kb.refcount_fields().size()));
  for (const std::string& f : kb.refcount_fields()) {
    w.Str(f);
  }
  w.U32(static_cast<uint32_t>(kb.extra_free_functions().size()));
  for (const std::string& f : kb.extra_free_functions()) {
    w.Str(f);
  }
  return w.TakeBytes();
}

std::optional<KnowledgeBase> DeserializeKb(std::string_view bytes) {
  ByteReader r(bytes);
  KnowledgeBase kb;
  const uint32_t api_count = r.Count();
  for (uint32_t i = 0; i < api_count && r.ok(); ++i) {
    RefApiInfo api;
    api.name = r.Str();
    api.direction = static_cast<RefDirection>(r.U8());
    api.category = static_cast<ApiCategory>(r.U8());
    api.returns_error = r.Bool();
    api.may_return_null = r.Bool();
    api.returns_object = r.Bool();
    api.object_param = r.I32();
    api.consumed_param = r.I32();
    api.hidden = r.Bool();
    api.tests_zero = r.Bool();
    api.discovered = r.Bool();
    kb.AddApi(std::move(api));
  }
  const uint32_t loop_count = r.Count();
  for (uint32_t i = 0; i < loop_count && r.ok(); ++i) {
    SmartLoopInfo loop;
    loop.name = r.Str();
    loop.iterator_arg = r.I32();
    loop.embedded_api = r.Str();
    kb.AddSmartLoop(std::move(loop));
  }
  const uint32_t struct_count = r.Count();
  for (uint32_t i = 0; i < struct_count && r.ok(); ++i) {
    kb.AddRefcountedStruct(r.Str());
  }
  const uint32_t sink_count = r.Count();
  for (uint32_t i = 0; i < sink_count && r.ok(); ++i) {
    std::string name = r.Str();
    const int param = r.I32();
    kb.AddOwnershipSink(std::move(name), param);
  }
  const uint32_t deref_count = r.Count();
  for (uint32_t i = 0; i < deref_count && r.ok(); ++i) {
    std::string name = r.Str();
    const uint32_t param_count = r.Count();
    std::vector<int> params;
    params.reserve(param_count);
    for (uint32_t j = 0; j < param_count && r.ok(); ++j) {
      params.push_back(r.I32());
    }
    kb.AddParamDerefs(std::move(name), std::move(params));
  }
  const uint32_t field_count = r.Count();
  for (uint32_t i = 0; i < field_count && r.ok(); ++i) {
    kb.AddRefcountField(r.Str());
  }
  const uint32_t free_count = r.Count();
  for (uint32_t i = 0; i < free_count && r.ok(); ++i) {
    kb.AddFreeFunction(r.Str());
  }
  if (!r.ok() || !r.AtEnd()) {
    return std::nullopt;
  }
  return kb;
}

// ---------------------------------------------------------------------------
// Object store

ScanCache::ScanCache(std::string dir) : dir_(std::move(dir)) {
  if (dir_.empty()) {
    return;
  }
  auto local = std::make_shared<LocalStore>(dir_);
  if (!local->ok()) {
    dir_.clear();  // degrade to a disabled cache rather than failing the scan
    return;
  }
  store_ = std::move(local);
}

ScanCache::ScanCache(std::shared_ptr<ObjectStore> store) : store_(std::move(store)) {}

namespace {

// objects/<first two key hex chars>/<rest>.<ext> — the fan-out keeps any
// one directory from accumulating the whole tree's entries.
std::string ObjectRelPath(const CacheKey& key, std::string_view suffix) {
  const std::string hex = key.Hex();
  std::string rel = "objects/";
  rel += hex.substr(0, 2);
  rel += '/';
  rel += hex.substr(2);
  rel += suffix;
  return rel;
}

}  // namespace

bool ScanCache::LoadObject(const std::string& name, uint8_t kind, std::string& payload) const {
  if (!enabled()) {
    return false;
  }
  TelemetrySpan span("cache.load", name);
  // An injected `cache.load` fault models a read that returned garbage (a
  // torn write, a bad sector): it degrades to a miss exactly like a real
  // checksum failure, and counts as a corrupt load either way.
  try {
    MaybeFault("cache.load", name);
  } catch (const FaultInjected&) {
    corrupt_loads_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  std::string blob;
  if (!store_->Get(name, blob)) {
    return false;
  }
  // Header: magic, version, kind, payload hash, payload size. The object
  // exists from here on: any validation failure is a corrupt load.
  ByteReader r(blob);
  char magic[4];
  for (char& c : magic) {
    c = static_cast<char>(r.U8());
  }
  const uint32_t version = r.U32();
  const uint8_t stored_kind = r.U8();
  const uint64_t payload_hash = r.U64();
  const uint32_t payload_size = r.U32();
  if (!r.ok() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0 ||
      version != kFormatVersion || stored_kind != kind) {
    corrupt_loads_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  constexpr size_t kHeaderSize = 4 + 4 + 1 + 8 + 4;
  if (blob.size() != kHeaderSize + payload_size) {
    corrupt_loads_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  payload = blob.substr(kHeaderSize);
  if (HashBytes(payload) != payload_hash) {
    corrupt_loads_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void ScanCache::StoreObject(const std::string& name, uint8_t kind, std::string_view payload,
                            std::string_view kind_name, std::string_view source) {
  if (!enabled()) {
    return;
  }
  TelemetrySpan span("cache.store", name);
  // A failed store only costs the next scan a miss; never fail the scan.
  try {
    MaybeFault("cache.store", name);
  } catch (const FaultInjected&) {
    return;
  }
  ByteWriter w;
  for (const char c : kMagic) {
    w.U8(static_cast<uint8_t>(c));
  }
  w.U32(kFormatVersion);
  w.U8(kind);
  w.U64(HashBytes(payload));
  w.U32(static_cast<uint32_t>(payload.size()));
  std::string blob = w.TakeBytes();
  blob.append(payload);
  store_->Put(name, blob, kind_name, source);
}

std::optional<DiscoveryFacts> ScanCache::LoadFacts(const CacheKey& key) const {
  std::string payload;
  if (!LoadObject(ObjectRelPath(key, ".facts"), kKindFacts, payload)) {
    return std::nullopt;
  }
  return DeserializeFacts(payload);
}

void ScanCache::StoreFacts(const CacheKey& key, const DiscoveryFacts& facts,
                           std::string_view source) {
  StoreObject(ObjectRelPath(key, ".facts"), kKindFacts, SerializeFacts(facts), "facts", source);
}

std::optional<TranslationUnit> ScanCache::LoadUnit(const CacheKey& key) const {
  std::string payload;
  if (!LoadObject(ObjectRelPath(key, ".unit"), kKindUnit, payload)) {
    return std::nullopt;
  }
  return DeserializeUnit(payload);
}

void ScanCache::StoreUnit(const CacheKey& key, const TranslationUnit& unit,
                          std::string_view source) {
  StoreObject(ObjectRelPath(key, ".unit"), kKindUnit, SerializeUnit(unit), "unit", source);
}

std::optional<CachedFileReports> ScanCache::LoadReports(const CacheKey& key,
                                                        uint64_t kb_fp) const {
  std::string payload;
  const std::string name = ObjectRelPath(key, "-" + HexU64(kb_fp) + ".reports");
  if (!LoadObject(name, kKindReports, payload)) {
    return std::nullopt;
  }
  return DeserializeReports(payload);
}

void ScanCache::StoreReports(const CacheKey& key, uint64_t kb_fp,
                             const CachedFileReports& reports, std::string_view source) {
  StoreObject(ObjectRelPath(key, "-" + HexU64(kb_fp) + ".reports"), kKindReports,
              SerializeReports(reports), "reports", source);
}

std::optional<KnowledgeBase> ScanCache::LoadKb(const CacheKey& key) const {
  std::string payload;
  if (!LoadObject(ObjectRelPath(key, ".kb"), kKindKb, payload)) {
    return std::nullopt;
  }
  return DeserializeKb(payload);
}

void ScanCache::StoreKb(const CacheKey& key, const KnowledgeBase& kb, std::string_view source) {
  StoreObject(ObjectRelPath(key, ".kb"), kKindKb, SerializeKb(kb), "kb", source);
}

std::vector<ScanCache::IndexEntry> ScanCache::ReadIndex() const {
  if (!enabled()) {
    return {};
  }
  return store_->Index();
}

}  // namespace refscan
