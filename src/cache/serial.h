// Flat binary serialization for cache artifacts.
//
// A deliberately tiny, versioned little-endian format: fixed-width integers,
// length-prefixed strings, no alignment, no back-references. The reader is
// written for hostile input — every length is bounds-checked against the
// remaining payload, and any overrun flips a sticky ok() flag instead of
// throwing or reading out of bounds, so a truncated or bit-flipped cache
// file degrades to "cache miss", never to UB (the corruption-tolerance
// contract of src/cache).

#ifndef REFSCAN_CACHE_SERIAL_H_
#define REFSCAN_CACHE_SERIAL_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace refscan {

// FNV-1a over `data`, seedable so independent hash streams stay independent
// (the 128-bit cache keys hash the same bytes under two seeds).
uint64_t HashBytes(std::string_view data, uint64_t seed = 0xcbf29ce484222325ull);

// Both FNV-1a streams in a single pass over `data` — equivalent to two
// HashBytes calls with the two seeds, at half the memory traffic (file
// contents are the largest input the cache keys ever hash).
struct Hash128 {
  uint64_t hi = 0;
  uint64_t lo = 0;
};
Hash128 HashBytesDual(std::string_view data);

// Mixes one 64-bit value into a running hash (splitmix64 finalizer).
uint64_t HashMix(uint64_t hash, uint64_t value);

class ByteWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void Str(std::string_view s);

  const std::string& bytes() const { return out_; }
  std::string TakeBytes() { return std::move(out_); }

 private:
  std::string out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  uint8_t U8();
  bool Bool() { return U8() != 0; }
  uint32_t U32();
  uint64_t U64();
  int32_t I32() { return static_cast<int32_t>(U32()); }
  std::string Str();

  // Reads an element count and rejects counts that could not possibly fit
  // in the remaining payload (>= 1 byte per element), capping the damage a
  // corrupt length field can do before the per-element reads fail.
  uint32_t Count();

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  bool Take(size_t n);  // false (and sticky-fails) if fewer than n bytes remain

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace refscan

#endif  // REFSCAN_CACHE_SERIAL_H_
