// Object-store backends for the content-addressed scan cache (DESIGN.md
// §5.8, §5.13).
//
// ScanCache (cache.h) owns the artifact semantics — keys, header framing,
// checksums, corruption accounting. What it reads and writes are opaque
// named blobs, and that is the seam this header abstracts: an ObjectStore
// is a name → blob map with durable puts. Two implementations:
//
//   LocalStore   the original on-disk layout: <dir>/objects/<xx>/<rest>,
//                tmp+rename atomic writes, an append-only index.tsv. Index
//                appends are one O_APPEND write(2) per entry (lines ≤
//                PIPE_BUF are appended atomically even across processes;
//                longer lines take an flock), so N worker processes can
//                share one cache directory without tearing the index.
//
//   RemoteStore  a client for `refscan cached`, the shared cache server:
//                content-addressed get/put over the same length-prefixed
//                Unix-socket framing as the shard workers (support/ipc.h).
//                A fleet of scanners points --cache-server at one warm
//                store; the first scanner of a commit pays, everyone else
//                splices. Any transport failure degrades to a miss /
//                dropped put — the server dying mid-scan can cost time,
//                never output.
//
// CacheServer is the matching server: a LocalStore behind an accept loop,
// one thread per connection. RunCacheGc size-caps a local store by evicting
// least-recently-used objects (LocalStore::Get touches mtime on every hit,
// so mtime order is LRU order, not write order).

#ifndef REFSCAN_CACHE_STORE_H_
#define REFSCAN_CACHE_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/support/ipc.h"
#include "src/support/server.h"

namespace refscan {

// One index.tsv line: kind, object file name, source path, payload bytes.
struct CacheIndexEntry {
  std::string kind;
  std::string object;
  std::string source;
  uint64_t bytes = 0;
};

// Abstract named-blob store. Implementations must be safe for concurrent
// calls from multiple threads (the scan stages fan out over a pool).
class ObjectStore {
 public:
  virtual ~ObjectStore() = default;

  // Fetches the blob stored under `name`. False = absent or unreachable
  // (the caller treats both as a miss).
  virtual bool Get(const std::string& name, std::string& blob) = 0;

  // Durably stores `blob` under `name`; `kind_name` and `source` feed the
  // index for inspection. Failures are silent by design — a lost put costs
  // the next scan a miss.
  virtual void Put(const std::string& name, std::string_view blob, std::string_view kind_name,
                   std::string_view source) = 0;

  // The store's index entries (empty for stores without one).
  virtual std::vector<CacheIndexEntry> Index() const = 0;
};

// On-disk store. An inaccessible directory yields ok() == false; callers
// degrade to a disabled cache.
class LocalStore : public ObjectStore {
 public:
  explicit LocalStore(std::string dir);

  bool ok() const { return !dir_.empty(); }
  const std::string& dir() const { return dir_; }

  bool Get(const std::string& name, std::string& blob) override;
  void Put(const std::string& name, std::string_view blob, std::string_view kind_name,
           std::string_view source) override;
  std::vector<CacheIndexEntry> Index() const override;

 private:
  void AppendIndexLine(const std::string& line);

  std::string dir_;
  std::atomic<uint64_t> tmp_counter_{0};
};

// In-memory store for resident processes (`refscan serve`, DESIGN.md
// §5.14): the daemon's KB snapshots, facts, units and report shards stay
// hot across requests without touching disk. Mutex-guarded map — cache
// traffic is tiny next to parsing, and a single lock keeps eviction (none:
// the daemon's working set is one tree's artifacts) and accounting trivial.
class MemoryStore : public ObjectStore {
 public:
  bool Get(const std::string& name, std::string& blob) override;
  void Put(const std::string& name, std::string_view blob, std::string_view kind_name,
           std::string_view source) override;
  std::vector<CacheIndexEntry> Index() const override;

  size_t objects() const;
  uint64_t bytes() const;

 private:
  struct Entry {
    std::string blob;
    std::string kind;
    std::string source;
  };
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  uint64_t bytes_ = 0;
};

// Client for a CacheServer. One connection, serialized by a mutex (cache
// traffic is small next to parsing; a connection pool is not worth the
// states). Connects lazily on first use with the bounded jittered backoff
// of `backoff` (one immediate try plus retries — a server still binding its
// socket, or restarting, is a transient, not an outage). A transport
// failure mid-conversation reconnects and replays the request once (get/put
// are idempotent content-addressed ops); only when the whole budget is
// exhausted does the store mark itself broken and degrade every later call
// to a cheap miss, so a fleet scan outlives its cache server.
class RemoteStore : public ObjectStore {
 public:
  explicit RemoteStore(std::string socket_path, BackoffPolicy backoff = {});

  bool Get(const std::string& name, std::string& blob) override;
  void Put(const std::string& name, std::string_view blob, std::string_view kind_name,
           std::string_view source) override;
  std::vector<CacheIndexEntry> Index() const override { return {}; }

 private:
  bool EnsureConnected();  // caller holds mu_

  std::string socket_path_;
  BackoffPolicy backoff_;
  std::mutex mu_;
  OwnedFd fd_;
  bool broken_ = false;
};

// Cache server: serves get/put for one LocalStore over a Unix socket.
// Thread-per-connection; the LocalStore's atomic object writes and index
// appends make concurrent connections safe. Run via Start()/Stop() (tests,
// benches) or let `refscan cached` block on ServeForever().
class CacheServer {
 public:
  CacheServer(std::string dir, std::string socket_path);
  ~CacheServer();

  CacheServer(const CacheServer&) = delete;
  CacheServer& operator=(const CacheServer&) = delete;

  // Binds the socket and starts the accept thread. False + `error` if the
  // directory or socket is unusable.
  bool Start(std::string* error = nullptr);

  // Stops accepting, shuts down live connections, joins every thread.
  // Idempotent; the destructor calls it.
  void Stop();

  // Graceful SIGTERM path (shared drain semantics, support/server.h): stop
  // accepting, close and unlink the listener, then let every request
  // already received finish and flush its reply — SHUT_RD wakes idle
  // readers without cutting in-flight writes, so no client is left on a
  // half-written frame. Escalates to a hard shutdown only past
  // `timeout_ms`. Idempotent with Stop(); returns true when the drain
  // finished inside the budget.
  bool Drain(uint32_t timeout_ms = 5000);

  const std::string& socket_path() const { return socket_path_; }

  // Served-request counters (for the CLI's status line and tests).
  uint64_t gets() const { return gets_.load(std::memory_order_relaxed); }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t puts() const { return puts_.load(std::memory_order_relaxed); }

 private:
  void AcceptLoop();
  void ServeConn(OwnedFd conn);

  LocalStore store_;
  std::string socket_path_;
  OwnedFd listen_fd_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  ConnectionRegistry conns_;

  std::atomic<uint64_t> gets_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> puts_{0};
};

// Size-capped LRU eviction for a local cache directory (`refscan cache gc`).
// Deletes least-recently-used objects (mtime order; LocalStore::Get touches
// mtime on hit) until the objects/ tree holds at most `max_bytes`, then
// compacts index.tsv down to the surviving objects (dropping dead and
// superseded-duplicate lines). Best-effort under concurrent writers: a
// racing store can push the total back over the cap, never corrupt it.
struct CacheGcStats {
  uint64_t kept_objects = 0;
  uint64_t kept_bytes = 0;
  uint64_t evicted_objects = 0;
  uint64_t evicted_bytes = 0;
};
CacheGcStats RunCacheGc(const std::string& dir, uint64_t max_bytes);

}  // namespace refscan

#endif  // REFSCAN_CACHE_STORE_H_
