#include "src/cache/store.h"

#include <fcntl.h>
#include <limits.h>
#include <sys/file.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "src/cache/serial.h"

namespace refscan {

namespace stdfs = std::filesystem;

namespace {

// Cache-server frame types (one request frame in, one reply frame out, in
// lockstep — the put ack keeps the stream framed and gives natural
// backpressure).
constexpr uint8_t kCacheGet = 1;    // payload: Str name
constexpr uint8_t kCacheHit = 2;    // payload: the blob
constexpr uint8_t kCacheMiss = 3;   // empty
constexpr uint8_t kCachePut = 4;    // payload: Str name, Str kind, Str source, Str blob
constexpr uint8_t kCachePutOk = 5;  // empty

// Writes all of `data`, looping over partial writes and EINTR.
bool WriteFull(int fd, std::string_view data) {
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

std::vector<CacheIndexEntry> ParseIndexFile(const stdfs::path& path) {
  std::vector<CacheIndexEntry> entries;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    CacheIndexEntry entry;
    const size_t t1 = line.find('\t');
    const size_t t2 = t1 == std::string::npos ? std::string::npos : line.find('\t', t1 + 1);
    const size_t t3 = t2 == std::string::npos ? std::string::npos : line.find('\t', t2 + 1);
    if (t3 == std::string::npos) {
      continue;  // malformed line: skip, don't fail
    }
    entry.kind = line.substr(0, t1);
    entry.object = line.substr(t1 + 1, t2 - t1 - 1);
    entry.source = line.substr(t2 + 1, t3 - t2 - 1);
    const std::string bytes = line.substr(t3 + 1);
    char* end = nullptr;
    entry.bytes = std::strtoull(bytes.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      continue;
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

}  // namespace

// ---------------------------------------------------------------------------
// LocalStore

LocalStore::LocalStore(std::string dir) : dir_(std::move(dir)) {
  if (dir_.empty()) {
    return;
  }
  std::error_code ec;
  stdfs::create_directories(stdfs::path(dir_) / "objects", ec);
  if (ec) {
    dir_.clear();  // degrade to a disabled store rather than failing the scan
  }
}

bool LocalStore::Get(const std::string& name, std::string& blob) {
  if (dir_.empty()) {
    return false;
  }
  const stdfs::path target = stdfs::path(dir_) / name;
  std::ifstream in(target, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  blob = std::move(buf).str();
  // Touch mtime on every hit so `cache gc` LRU order reflects use, not
  // write time. Best effort; a read-only cache still serves hits.
  ::utimensat(AT_FDCWD, target.c_str(), nullptr, 0);
  return true;
}

void LocalStore::Put(const std::string& name, std::string_view blob, std::string_view kind_name,
                     std::string_view source) {
  if (dir_.empty()) {
    return;
  }
  const stdfs::path target = stdfs::path(dir_) / name;
  std::error_code ec;
  stdfs::create_directories(target.parent_path(), ec);
  if (ec) {
    return;
  }
  // Write-then-rename: readers (including concurrent scans sharing this
  // directory) only ever see complete objects. The tmp name mixes in the
  // pid so worker processes sharing a cache never collide.
  const stdfs::path tmp =
      target.parent_path() /
      (target.filename().string() + ".tmp" + std::to_string(::getpid()) + "." +
       std::to_string(tmp_counter_.fetch_add(1, std::memory_order_relaxed)));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return;
    }
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    if (!out) {
      out.close();
      stdfs::remove(tmp, ec);
      return;
    }
  }
  stdfs::rename(tmp, target, ec);
  if (ec) {
    stdfs::remove(tmp, ec);
    return;
  }

  std::string line;
  line.reserve(kind_name.size() + name.size() + source.size() + 24);
  line.append(kind_name);
  line.push_back('\t');
  line.append(name);
  line.push_back('\t');
  line.append(source);
  line.push_back('\t');
  line.append(std::to_string(blob.size()));
  line.push_back('\n');
  AppendIndexLine(line);
}

// One O_APPEND write(2) per entry: appends of a single line land atomically
// at the end of the file even across processes, so N workers sharing a
// cache directory never tear each other's index lines. Lines past PIPE_BUF
// (deep source paths) fall back to an exclusive flock for the same
// guarantee at any size.
void LocalStore::AppendIndexLine(const std::string& line) {
  const std::string path = (stdfs::path(dir_) / "index.tsv").string();
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return;
  }
  if (line.size() <= PIPE_BUF) {
    WriteFull(fd, line);
  } else if (::flock(fd, LOCK_EX) == 0) {
    WriteFull(fd, line);
    ::flock(fd, LOCK_UN);
  }
  ::close(fd);
}

std::vector<CacheIndexEntry> LocalStore::Index() const {
  if (dir_.empty()) {
    return {};
  }
  return ParseIndexFile(stdfs::path(dir_) / "index.tsv");
}

// ---------------------------------------------------------------------------
// MemoryStore

bool MemoryStore::Get(const std::string& name, std::string& blob) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    return false;
  }
  blob = it->second.blob;
  return true;
}

void MemoryStore::Put(const std::string& name, std::string_view blob, std::string_view kind_name,
                      std::string_view source) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[name];
  bytes_ += blob.size() - entry.blob.size();
  entry.blob = std::string(blob);
  entry.kind = std::string(kind_name);
  entry.source = std::string(source);
}

std::vector<CacheIndexEntry> MemoryStore::Index() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CacheIndexEntry> entries;
  entries.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    CacheIndexEntry e;
    e.kind = entry.kind;
    e.object = name;
    e.source = entry.source;
    e.bytes = entry.blob.size();
    entries.push_back(std::move(e));
  }
  // The map iterates in hash order; index consumers expect a stable view.
  std::sort(entries.begin(), entries.end(),
            [](const CacheIndexEntry& a, const CacheIndexEntry& b) { return a.object < b.object; });
  return entries;
}

size_t MemoryStore::objects() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

uint64_t MemoryStore::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

// ---------------------------------------------------------------------------
// RemoteStore

RemoteStore::RemoteStore(std::string socket_path, BackoffPolicy backoff)
    : socket_path_(std::move(socket_path)), backoff_(backoff) {}

bool RemoteStore::EnsureConnected() {
  if (broken_) {
    return false;
  }
  if (fd_.valid()) {
    return true;
  }
  fd_ = ConnectWithRetry(socket_path_, backoff_);
  if (!fd_.valid()) {
    broken_ = true;  // no server within the budget: every later call is a cheap miss
    return false;
  }
  return true;
}

bool RemoteStore::Get(const std::string& name, std::string& blob) {
  std::lock_guard<std::mutex> lock(mu_);
  ByteWriter w;
  w.Str(name);
  // One replay after a transport failure: get is an idempotent read, so a
  // server bounce between requests (EPIPE on send, EOF on recv) costs one
  // reconnect, not the rest of the scan's cache.
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (!EnsureConnected()) {
      return false;
    }
    uint8_t type = 0;
    if (SendFrame(fd_.get(), kCacheGet, w.bytes()) &&
        RecvFrame(fd_.get(), type, blob) == RecvOutcome::kFrame) {
      return type == kCacheHit;
    }
    fd_.Reset();
  }
  broken_ = true;  // two fresh connections both died mid-conversation
  return false;
}

void RemoteStore::Put(const std::string& name, std::string_view blob, std::string_view kind_name,
                      std::string_view source) {
  std::lock_guard<std::mutex> lock(mu_);
  ByteWriter w;
  w.Str(name);
  w.Str(kind_name);
  w.Str(source);
  w.Str(blob);
  // Same one-replay policy as Get: a put is idempotent (content-addressed
  // name → same bytes), so replaying a maybe-applied put is safe.
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (!EnsureConnected()) {
      return;
    }
    uint8_t type = 0;
    std::string ack;
    if (SendFrame(fd_.get(), kCachePut, w.bytes()) &&
        RecvFrame(fd_.get(), type, ack) == RecvOutcome::kFrame && type == kCachePutOk) {
      return;
    }
    fd_.Reset();
  }
  broken_ = true;
}

// ---------------------------------------------------------------------------
// CacheServer

CacheServer::CacheServer(std::string dir, std::string socket_path)
    : store_(std::move(dir)), socket_path_(std::move(socket_path)) {}

CacheServer::~CacheServer() { Stop(); }

bool CacheServer::Start(std::string* error) {
  if (!store_.ok()) {
    if (error != nullptr) {
      *error = "cannot create cache directory " + store_.dir();
    }
    return false;
  }
  listen_fd_ = UnixListen(socket_path_, error);
  if (!listen_fd_.valid()) {
    return false;
  }
  stopping_.store(false, std::memory_order_relaxed);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void CacheServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    // The poll timeout bounds how long Stop() waits for the loop to notice
    // stopping_; it does not limit how long clients may stay connected.
    OwnedFd conn = UnixAccept(listen_fd_.get(), /*timeout_ms=*/200);
    if (!conn.valid()) {
      continue;
    }
    conns_.Add(conn.get());
    conns_.Launch([this, c = std::move(conn)]() mutable { ServeConn(std::move(c)); });
  }
}

void CacheServer::ServeConn(OwnedFd conn) {
  uint8_t type = 0;
  std::string payload;
  while (!stopping_.load(std::memory_order_relaxed)) {
    if (RecvFrame(conn.get(), type, payload) != RecvOutcome::kFrame) {
      break;
    }
    if (type == kCacheGet) {
      ByteReader r(payload);
      const std::string name = r.Str();
      gets_.fetch_add(1, std::memory_order_relaxed);
      std::string blob;
      if (r.ok() && r.AtEnd() && store_.Get(name, blob)) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        if (!SendFrame(conn.get(), kCacheHit, blob)) {
          break;
        }
      } else if (!SendFrame(conn.get(), kCacheMiss, {})) {
        break;
      }
    } else if (type == kCachePut) {
      ByteReader r(payload);
      std::string name = r.Str();
      std::string kind = r.Str();
      std::string source = r.Str();
      std::string blob = r.Str();
      if (r.ok() && r.AtEnd()) {
        puts_.fetch_add(1, std::memory_order_relaxed);
        store_.Put(name, blob, kind, source);
      }
      if (!SendFrame(conn.get(), kCachePutOk, {})) {
        break;
      }
    } else {
      break;  // unknown frame type: not our protocol, drop the connection
    }
  }
  // Deregister before the fd closes (at end of this function) so Stop()
  // never calls shutdown() on a recycled descriptor.
  conns_.Remove(conn.get());
}

void CacheServer::Stop() {
  if (!accept_thread_.joinable()) {
    return;
  }
  stopping_.store(true, std::memory_order_relaxed);
  accept_thread_.join();
  conns_.ShutdownAll(SHUT_RDWR);  // unblocks any conn thread parked in recv
  conns_.JoinAll();
  listen_fd_.Reset();
  ::unlink(socket_path_.c_str());
}

bool CacheServer::Drain(uint32_t timeout_ms) {
  if (!accept_thread_.joinable()) {
    return true;
  }
  // Reject new work first: stop the accept loop and remove the socket file,
  // so a connect() after SIGTERM fails fast instead of queueing behind a
  // listener nobody will ever accept from.
  stopping_.store(true, std::memory_order_relaxed);
  accept_thread_.join();
  listen_fd_.Reset();
  ::unlink(socket_path_.c_str());
  // A connection thread mid-request is past its stopping_ check: it finishes
  // the exchange and flushes the reply before SHUT_RD's EOF reaches its next
  // recv. Parked readers wake immediately with a clean EOF.
  return DrainConnections(conns_, timeout_ms);
}

// ---------------------------------------------------------------------------
// GC

CacheGcStats RunCacheGc(const std::string& dir, uint64_t max_bytes) {
  CacheGcStats stats;
  const stdfs::path objects = stdfs::path(dir) / "objects";
  struct Obj {
    std::string rel;  // path relative to `dir`, matching index object names
    uint64_t bytes = 0;
    stdfs::file_time_type mtime;
  };
  std::vector<Obj> objs;
  uint64_t total = 0;
  std::error_code ec;
  for (stdfs::recursive_directory_iterator it(objects, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file(ec)) {
      continue;
    }
    Obj o;
    o.rel = stdfs::relative(it->path(), dir, ec).generic_string();
    o.bytes = it->file_size(ec);
    o.mtime = it->last_write_time(ec);
    if (ec) {
      continue;  // racing eviction/rename: skip
    }
    total += o.bytes;
    objs.push_back(std::move(o));
  }
  // Oldest-first, name as the deterministic tie-break within one mtime tick.
  std::sort(objs.begin(), objs.end(), [](const Obj& a, const Obj& b) {
    if (a.mtime != b.mtime) {
      return a.mtime < b.mtime;
    }
    return a.rel < b.rel;
  });
  std::vector<bool> evicted(objs.size(), false);
  for (size_t i = 0; i < objs.size() && total > max_bytes; ++i) {
    stdfs::remove(stdfs::path(dir) / objs[i].rel, ec);
    if (ec) {
      continue;
    }
    evicted[i] = true;
    total -= objs[i].bytes;
    stats.evicted_objects++;
    stats.evicted_bytes += objs[i].bytes;
  }
  for (size_t i = 0; i < objs.size(); ++i) {
    if (!evicted[i]) {
      stats.kept_objects++;
      stats.kept_bytes += objs[i].bytes;
    }
  }

  // Compact index.tsv down to surviving objects, keeping the newest line
  // per object. Best effort: an append racing the rewrite can lose its
  // index line (inspection only), never an object.
  const stdfs::path index_path = stdfs::path(dir) / "index.tsv";
  std::vector<CacheIndexEntry> entries = ParseIndexFile(index_path);
  std::unordered_set<std::string_view> seen;
  std::vector<const CacheIndexEntry*> kept;
  kept.reserve(entries.size());
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    if (seen.insert(it->object).second && stdfs::exists(stdfs::path(dir) / it->object, ec)) {
      kept.push_back(&*it);
    }
  }
  std::reverse(kept.begin(), kept.end());
  const stdfs::path tmp = stdfs::path(dir) / "index.tsv.gc";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return stats;
    }
    for (const CacheIndexEntry* e : kept) {
      out << e->kind << '\t' << e->object << '\t' << e->source << '\t' << e->bytes << '\n';
    }
  }
  stdfs::rename(tmp, index_path, ec);
  if (ec) {
    stdfs::remove(tmp, ec);
  }
  return stats;
}

}  // namespace refscan
