// Persistent content-addressed incremental scan cache (DESIGN.md §5.8).
//
// The steady-state workload of a per-commit scanning service is "the same
// tree with a small diff". The cache turns that from O(tree) into O(diff)
// by storing, per source file, three artifacts in a ccache/Bazel-style
// object store under <dir>/objects/:
//
//   <key>.facts     the file's DiscoveryFacts (the KB-independent stage-2
//                   projection, see src/kb) — replaces parsing on the warm
//                   non-interprocedural path
//   <key>.unit      the parsed TranslationUnit — replaces parsing whenever
//                   the file's reports must be (re)computed (--ipa mode, or
//                   a KB-fingerprint mismatch)
//   <key>-<kbfp>.reports   the raw stage-3 report shard + function count
//
// plus one tree-level artifact:
//
//   <key>.kb        the whole post-discovery KnowledgeBase, keyed by the
//                   ordered per-file facts plus the pre-discovery KB
//                   fingerprint — discovery is purely additive and
//                   deterministic in that pair, so a snapshot hit replaces
//                   both replay rounds (the warm-rescan bottleneck:
//                   classifying ~1k discovered APIs from scratch)
//
// <key> is 128 bits of FNV-1a over (format version, file path, file
// content, options fingerprint); <kbfp> additionally pins the exact
// post-discovery knowledge base, because a file's reports are a pure
// function of (content, KB, options). Loads validate magic, version, kind
// and a payload checksum, and treat any mismatch as a miss — a corrupted or
// truncated entry can cost time, never correctness. Raw blob I/O goes
// through an ObjectStore backend (src/cache/store.h): LocalStore writes to
// a temporary file and renames, so concurrent scans sharing a cache
// directory only ever observe complete objects, and appends one index.tsv
// line per stored object for inspection (readers skip malformed lines);
// RemoteStore speaks the same get/put to a shared `refscan cached` server.

#ifndef REFSCAN_CACHE_CACHE_H_
#define REFSCAN_CACHE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/ast/ast.h"
#include "src/cache/store.h"
#include "src/checkers/report.h"
#include "src/kb/kb.h"

namespace refscan {

// 128-bit content address (two independently-seeded FNV-1a streams).
struct CacheKey {
  uint64_t hi = 0;
  uint64_t lo = 0;

  std::string Hex() const;
  bool operator==(const CacheKey&) const = default;
};

// Key for one file's cache entries. Includes the path (two identical files
// at different paths produce distinct units and reports), the content, and
// the scan-options fingerprint.
CacheKey MakeFileKey(std::string_view path, std::string_view content, uint64_t options_fp);

// Key for the tree-level KB snapshot. Post-discovery KB state is a pure
// function of (pre-discovery KB, ordered per-file facts, nesting
// threshold): discovery only ever inserts, and every insert is determined
// by the facts sequence. Hashing exactly those inputs (plus the options
// fingerprint and format version, via MakeFileKey's framing) is what makes
// a snapshot hit sound. Note a comment-only edit leaves a file's facts
// unchanged, so small cosmetic diffs still hit.
CacheKey MakeKbSnapshotKey(uint64_t base_kb_fp, int nesting_threshold,
                           const std::vector<const DiscoveryFacts*>& facts, uint64_t options_fp);

// Deterministic digest of the entire knowledge base (APIs with all flags,
// smartloops, refcounted structs, ownership sinks, param-deref facts) in
// map order. Two scans whose post-discovery KBs fingerprint equal run the
// checkers over identical inputs, which is what lets stage 3 be skipped.
uint64_t FingerprintKnowledgeBase(const KnowledgeBase& kb);

// One file's cached stage-3 output: the raw (pre-dedup) report shard in
// checker emission order, the file's function count for ScanStats, and any
// function bodies the parser quarantined (DESIGN.md §5.15) — a spliced
// shard must reproduce the degraded-functions section exactly like a cold
// check would.
struct CachedFileReports {
  std::vector<BugReport> reports;
  uint64_t functions = 0;
  std::vector<DegradedFunction> degraded;
};

class ScanCache {
 public:
  // An empty `dir` constructs a disabled cache (every Load misses, every
  // Store is a no-op) so callers need no branches. A non-empty dir is
  // created on demand; creation failure degrades to disabled. This is the
  // on-disk LocalStore path.
  explicit ScanCache(std::string dir);

  // Backs the cache with an explicit store — how `--cache-server` plugs a
  // RemoteStore under the same artifact semantics (keys, header framing,
  // corruption accounting all unchanged; only raw blob I/O differs).
  // A null store constructs a disabled cache.
  explicit ScanCache(std::shared_ptr<ObjectStore> store);

  bool enabled() const { return store_ != nullptr; }
  const std::string& dir() const { return dir_; }

  std::optional<DiscoveryFacts> LoadFacts(const CacheKey& key) const;
  void StoreFacts(const CacheKey& key, const DiscoveryFacts& facts, std::string_view source);

  std::optional<TranslationUnit> LoadUnit(const CacheKey& key) const;
  void StoreUnit(const CacheKey& key, const TranslationUnit& unit, std::string_view source);

  std::optional<CachedFileReports> LoadReports(const CacheKey& key, uint64_t kb_fp) const;
  void StoreReports(const CacheKey& key, uint64_t kb_fp, const CachedFileReports& reports,
                    std::string_view source);

  std::optional<KnowledgeBase> LoadKb(const CacheKey& key) const;
  void StoreKb(const CacheKey& key, const KnowledgeBase& kb, std::string_view source);

  // Objects that existed on disk but failed validation (bad magic/version/
  // kind byte, truncation, checksum mismatch) or whose read failed at the
  // `cache.load` fault-injection site. Every one degraded to a miss; the
  // engine surfaces the count as ScanStats::cache_corrupt. Plain absent
  // objects are not counted.
  uint64_t corrupt_loads() const { return corrupt_loads_.load(std::memory_order_relaxed); }

  // index.tsv bookkeeping: kind, object file name, source path, stored
  // bytes. Malformed lines are skipped, not fatal. Stores without an index
  // (RemoteStore) report empty.
  using IndexEntry = CacheIndexEntry;
  std::vector<IndexEntry> ReadIndex() const;

 private:
  bool LoadObject(const std::string& name, uint8_t kind, std::string& payload) const;
  void StoreObject(const std::string& name, uint8_t kind, std::string_view payload,
                   std::string_view kind_name, std::string_view source);

  std::string dir_;
  std::shared_ptr<ObjectStore> store_;
  mutable std::atomic<uint64_t> corrupt_loads_{0};
};

// Serializers, exposed for tests (round-trip and corruption suites).
std::string SerializeFacts(const DiscoveryFacts& facts);
std::optional<DiscoveryFacts> DeserializeFacts(std::string_view bytes);
std::string SerializeUnit(const TranslationUnit& unit);
std::optional<TranslationUnit> DeserializeUnit(std::string_view bytes);
std::string SerializeReports(const CachedFileReports& reports);
std::optional<CachedFileReports> DeserializeReports(std::string_view bytes);
std::string SerializeKb(const KnowledgeBase& kb);
std::optional<KnowledgeBase> DeserializeKb(std::string_view bytes);

}  // namespace refscan

#endif  // REFSCAN_CACHE_CACHE_H_
