// Refcounting knowledge base.
//
// Mirrors the paper's lexer-parsing stage (§6.1): it knows which APIs
// increase (𝒢) or decrease (𝒫) refcounters, which of them deviate from the
// standard contract (return-error 𝒢_E, return-NULL 𝒢_N — §5.1), which are
// "hidden" behind non-refcount-sounding names (𝒢_H/𝒫_H — §5.2), and which
// macros are smartloops (ℳ_SL). Two sources feed it:
//
//   1. A built-in catalogue of real Linux kernel APIs transcribed from the
//      paper's Appendix A (Table 6) plus the general/specific APIs of §5.
//   2. Discovery from source: the structure parser marks structs carrying a
//      refcounter (directly or nested up to a threshold), then functions
//      that operate those refcounters — or wrap known refcounting APIs —
//      are classified as refcounting APIs themselves, with their deviation
//      flags inferred from their bodies. Macros whose bodies loop over a
//      refcounting-embedded API become smartloops.

#ifndef REFSCAN_KB_KB_H_
#define REFSCAN_KB_KB_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/ast/ast.h"

namespace refscan {

enum class RefDirection : uint8_t { kIncrease, kDecrease };

// The paper's three API categories (§5).
enum class ApiCategory : uint8_t {
  kGeneral,   // refcount_inc / kref_put / kobject_get ...
  kSpecific,  // of_node_get / dev_hold: typed wrappers over general APIs
  kEmbedded,  // find-like APIs whose main job is not refcounting
};

struct RefApiInfo {
  std::string name;
  RefDirection direction = RefDirection::kIncrease;
  ApiCategory category = ApiCategory::kGeneral;

  // Deviations (§5.1).
  bool returns_error = false;    // 𝒢_E: increments even when returning an error
  bool may_return_null = false;  // 𝒢_N: returns the object pointer, possibly NULL

  // Shape.
  bool returns_object = false;  // the acquired object is the return value
  int object_param = 0;         // 0-based index of the object parameter; -1 if retval-only
  int consumed_param = -1;      // param whose refcount this API *decreases* (of_find_*(from))

  // 𝒢_H/𝒫_H: none of the refcounting keywords appear in the name, or the
  // name's dominant meaning is unrelated (find/parse/...). §5.2.
  bool hidden = false;

  // Decrease APIs of the *_dec_and_test / *_put_and_test family: the return
  // value is true exactly when the count hit zero and the caller owns the
  // release. P11 (test-and-free, DESIGN.md §5.12) keys on this flag.
  bool tests_zero = false;

  // Provenance: false for the built-in catalogue, true for entries produced
  // by source discovery or interprocedural summaries. Only discovered
  // entries may be refined after registration (FindApiMutable) — the
  // catalogue is ground truth and stays untouched.
  bool discovered = false;
};

struct SmartLoopInfo {
  std::string name;          // e.g. for_each_matching_node
  int iterator_arg = 0;      // 0-based macro argument holding the iterated object
  std::string embedded_api;  // the refcounting-embedded API invoked per iteration
};

// Keyword sets the paper uses for two-level commit filtering and for the
// hiddenness classification (§3.1, Table 3).
const std::vector<std::string>& IncreaseKeywords();  // get, take, hold, grab, ...
const std::vector<std::string>& DecreaseKeywords();  // put, drop, unhold, release, ...

// True if any refcounting keyword occurs as an identifier word in `name`.
bool NameSoundsLikeRefcounting(std::string_view name);

// Inter-paired callback fields of kernel ops structs (§5.3.2): acquire-side
// field first ("probe"), release-side second ("remove").
const std::vector<std::pair<std::string, std::string>>& PairedOpsFields();

// Name-based function pairs (register/unregister, create/destroy, ...);
// returns the release-side word for an acquire-side word, or "" if none.
std::string PairedReleaseWord(std::string_view acquire_word);

// The KB-independent projection of one translation unit that discovery
// consumes (§6.1). Extraction is a pure function of the unit — it never
// consults a KnowledgeBase — so the facts can be computed once, cached on
// disk keyed by file content, and replayed later: applying the same facts in
// the same file order rebuilds a byte-identical KB no matter whether the
// facts came from a fresh parse or from the incremental scan cache
// (src/cache). Everything order- or KB-sensitive (is this callee a known
// decrease API? is this struct tag already refcounted?) is resolved at
// replay time, inside DiscoverFromFacts.
struct DiscoveryFacts {
  struct Field {
    bool direct_refcounter = false;  // IsRefcounterFieldType(type, name)
    std::string nested_tag;          // struct tag of the field type, "" if none
    std::string name;                // field name (refcount-field registry, P10)
  };
  struct Struct {
    std::string name;
    std::vector<Field> fields;
  };
  // One refcount-relevant expression inside a function body, in pre-order
  // traversal position: either a call (classified against the KB at replay
  // time) or a ++/-- on a refcounter-named member.
  struct RefEvent {
    bool is_call = false;
    std::string callee;   // calls only
    int arg1_param = -1;  // param index named by the call's second argument
    bool increase = false;  // unary events only: ++ vs --
  };
  struct Function {
    std::string name;
    bool returns_pointer = false;
    bool has_return_null = false;
    bool has_error_return = false;
    std::vector<RefEvent> events;
    int sink_param = -1;  // param stored into non-local state, -1 if none
  };
  struct Macro {
    std::string name;
    std::vector<std::string> params;
    std::string body;
  };

  std::vector<Struct> structs;
  std::vector<Function> functions;  // body-carrying functions only
  std::vector<Macro> macros;        // function-like macros whose body says "for"
};

DiscoveryFacts ExtractDiscoveryFacts(const TranslationUnit& unit);

// Thread-safety: the const lookup surface (FindApi / FindSmartLoop /
// IsRefcountedStruct / FindOwnershipSink and the accessors) never mutates,
// caches, or lazily initialises anything, so any number of threads may read
// one KnowledgeBase concurrently — the parallel checking stage relies on
// this. Registration and discovery mutate the maps and must be externally
// serialised against all readers (the scan engine runs discovery behind a
// merge barrier, before the first concurrent reader starts).
class KnowledgeBase {
 public:
  // The catalogue transcribed from the paper (Appendix A + §5 examples).
  static KnowledgeBase BuiltIn();

  // The copy operations rebuild api_index_ (its string_view keys alias the
  // source's map nodes); moves keep it, because std::map moves steal nodes
  // without relocating them.
  KnowledgeBase() = default;
  KnowledgeBase(const KnowledgeBase& other);
  KnowledgeBase& operator=(const KnowledgeBase& other);
  KnowledgeBase(KnowledgeBase&&) = default;
  KnowledgeBase& operator=(KnowledgeBase&&) = default;

  // Lookup ------------------------------------------------------------
  const RefApiInfo* FindApi(std::string_view name) const;
  // Hot-path variant: one integer hash probe against symbol_index_, with the
  // same "__"-prefix fallback semantics as the string overload.
  const RefApiInfo* FindApi(Symbol name) const;
  const SmartLoopInfo* FindSmartLoop(std::string_view name) const;
  const SmartLoopInfo* FindSmartLoop(Symbol name) const {
    return FindSmartLoop(name.view());
  }
  bool IsRefcountedStruct(std::string_view struct_name) const;

  // Refcount-field registry (P10, DESIGN.md §5.12): member names whose
  // declared type is a checked refcount type (refcount_t / kref / typed
  // atomics that pass IsRefcounterFieldType), fed by struct discovery and
  // dialect catalogues. Raw ++/--/= on such a member bypasses the saturating
  // APIs. The match is by field name, not (struct, field) pair — the same
  // approximation the textual discovery pass already makes for structs.
  bool IsRefcountField(std::string_view field_name) const;
  bool IsRefcountField(Symbol field_name) const;

  // Classification helpers --------------------------------------------
  static bool IsFreeFunction(std::string_view name);    // kfree, vfree, ...
  static bool IsLockFunction(std::string_view name);    // mutex_lock, spin_lock, ...
  static bool IsUnlockFunction(std::string_view name);  // mutex_unlock, ...
  // Symbol variants compare interned ids — no hashing, no char compares.
  static bool IsFreeFunction(Symbol name);
  static bool IsLockFunction(Symbol name);
  static bool IsUnlockFunction(Symbol name);

  // Instance variant: the static kernel list plus any dialect-registered
  // deallocators (uacpi_free, g_free, ... — AddFreeFunction). The CPG uses
  // this so ℱ events exist for non-kernel codebases too.
  bool IsFreeApi(Symbol name) const;
  bool IsFreeApi(std::string_view name) const;

  // Ownership sinks: functions that store one of their pointer parameters
  // into longer-lived state (a global or another parameter's field).
  // Passing an acquired reference to a sink transfers ownership — the
  // inter-procedural half of escape reasoning (§5.4.2). Returns the 0-based
  // parameter index consumed, or -1.
  int FindOwnershipSink(std::string_view function_name) const;
  int FindOwnershipSink(Symbol function_name) const;

  // Param-deref facts: non-refcounting helpers known to dereference some of
  // their pointer parameters (from interprocedural summaries). Call sites
  // grow synthetic 𝒟 events for the listed arguments, which lets the
  // use-after-decrease checkers see derefs hidden inside helpers. Returns
  // null when no fact is registered.
  const std::vector<int>* FindParamDerefs(std::string_view function_name) const;
  const std::vector<int>* FindParamDerefs(Symbol function_name) const;

  // Registration -------------------------------------------------------
  void AddApi(RefApiInfo info);
  void AddSmartLoop(SmartLoopInfo info);
  void AddRefcountedStruct(std::string name);
  void AddOwnershipSink(std::string name, int param_index);
  void AddParamDerefs(std::string name, std::vector<int> param_indices);
  void AddRefcountField(std::string field_name);
  void AddFreeFunction(std::string name);

  // Mutable access for summary-time refinement (exact-name match only).
  // Callers must leave built-in entries (discovered == false) alone and are
  // subject to the same serialisation contract as discovery: no concurrent
  // readers while an entry is being refined. Fields are mutated in place —
  // entry addresses are stable, so `const RefApiInfo*` held elsewhere stays
  // valid.
  RefApiInfo* FindApiMutable(std::string_view name);

  // Discovery from source (§6.1 "Lexer Parsing"). Safe to call repeatedly
  // (e.g. once per translation unit); runs a bounded nesting fixpoint for
  // struct classification and then classifies functions and macros.
  // Equivalent to DiscoverFromFacts(ExtractDiscoveryFacts(unit), ...).
  void DiscoverFromUnit(const TranslationUnit& unit, int nesting_threshold = 3);

  // Replays one unit's extracted facts. All KB- and order-sensitive
  // decisions happen here, so replaying cached facts in the original unit
  // order reproduces DiscoverFromUnit's result exactly (the incremental
  // scan cache depends on this — see src/cache and DESIGN.md §5.8).
  void DiscoverFromFacts(const DiscoveryFacts& facts, int nesting_threshold = 3);

  // Accessors for reporting.
  const std::map<std::string, RefApiInfo, std::less<>>& apis() const { return apis_; }
  const std::map<std::string, SmartLoopInfo, std::less<>>& smart_loops() const {
    return smart_loops_;
  }
  const std::set<std::string, std::less<>>& refcounted_structs() const {
    return refcounted_structs_;
  }
  const std::map<std::string, int, std::less<>>& ownership_sinks() const {
    return ownership_sinks_;
  }
  const std::map<std::string, std::vector<int>, std::less<>>& param_derefs() const {
    return param_derefs_;
  }
  const std::set<std::string, std::less<>>& refcount_fields() const {
    return refcount_fields_;
  }
  const std::set<std::string, std::less<>>& extra_free_functions() const {
    return extra_free_fns_;
  }

 private:
  void DiscoverStructs(const DiscoveryFacts& facts, int nesting_threshold);
  void DiscoverFunctions(const DiscoveryFacts& facts);
  void DiscoverMacros(const DiscoveryFacts& facts);
  void DiscoverOwnershipSinks(const DiscoveryFacts& facts);

  // Single mutation point for apis_: keeps api_index_/symbol_index_ in sync.
  RefApiInfo& UpsertApi(RefApiInfo info);
  void RebuildApiIndex();

  std::map<std::string, RefApiInfo, std::less<>> apis_;
  std::map<std::string, SmartLoopInfo, std::less<>> smart_loops_;
  std::set<std::string, std::less<>> refcounted_structs_;
  std::map<std::string, int, std::less<>> ownership_sinks_;
  std::map<std::string, std::vector<int>, std::less<>> param_derefs_;
  std::set<std::string, std::less<>> refcount_fields_;
  std::set<std::string, std::less<>> extra_free_fns_;

  // Hash indexes over the sorted maps for the hot lookups (FindApi & co run
  // per call expression in discovery replay and CPG construction; the sorted
  // maps stay the source of truth for deterministic iteration). String keys
  // view the map nodes' keys — address-stable under insert and move; symbol
  // keys are interned ids, so the CPG's per-call lookup is one integer hash
  // probe (DESIGN.md §5.11).
  std::unordered_map<std::string_view, const RefApiInfo*> api_index_;
  std::unordered_map<uint32_t, const RefApiInfo*> symbol_index_;
  std::unordered_map<uint32_t, int> sink_index_;
  std::unordered_map<uint32_t, const std::vector<int>*> deref_index_;
  std::unordered_set<uint32_t> field_index_;  // interned refcount_fields_
  std::unordered_set<uint32_t> free_index_;   // interned extra_free_fns_
};

// Userspace refcount dialects (P12, DESIGN.md §5.12): named catalogues of
// non-kernel refcounting APIs, refcounted structs, refcount field names and
// deallocators that ApplyDialect folds into a KnowledgeBase so the scanner
// understands non-kernel trees (scan --dialect NAME). Catalogue entries are
// ground truth like the built-ins (discovered == false).
const std::vector<std::string>& KnownDialects();  // sorted: "glib", "uacpi"
bool ApplyDialect(KnowledgeBase& kb, std::string_view dialect);

}  // namespace refscan

#endif  // REFSCAN_KB_KB_H_
