// Implementation-deviation detector (§5.1.3 "Another way is to proactively
// detect such deviations, as an important future work").
//
// Scans a source tree for refcounting APIs whose *implementations* deviate
// from the standard contract — increase-even-on-error (𝒢_E, the
// pm_runtime_get_sync family) and may-return-NULL (𝒢_N, the mdesc_grab
// family) — so the deviants can be documented before they cause the next
// hundred bugs.

#ifndef REFSCAN_KB_DEVIATIONS_H_
#define REFSCAN_KB_DEVIATIONS_H_

#include <string>
#include <vector>

#include "src/kb/kb.h"
#include "src/support/source.h"

namespace refscan {

enum class DeviationKind : uint8_t {
  kReturnError,  // increments the refcount even when returning an error
  kReturnNull,   // hands back the (possibly NULL) object pointer
};

std::string_view DeviationKindName(DeviationKind kind);

struct DeviationReport {
  DeviationKind kind = DeviationKind::kReturnError;
  std::string api;
  std::string file;  // where the deviant implementation lives
  uint32_t line = 0;
  bool hidden = false;  // the name does not sound like refcounting at all
  std::string note;
};

// Parses + discovers over `tree`, then reports every API *defined in the
// tree* whose implementation carries a deviation flag. Already-catalogued
// deviants (the built-in Table 6 entries) are reported too when the tree
// contains their definitions. `jobs` fans the parse stage out over a
// thread pool (0 = one per hardware thread); the report list is identical
// at every thread count.
std::vector<DeviationReport> DetectDeviations(const SourceTree& tree,
                                              KnowledgeBase kb = KnowledgeBase::BuiltIn(),
                                              size_t jobs = 1);

}  // namespace refscan

#endif  // REFSCAN_KB_DEVIATIONS_H_
