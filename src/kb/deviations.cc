#include "src/kb/deviations.h"

#include <algorithm>

#include "src/ast/parser.h"
#include "src/support/strings.h"
#include "src/support/threadpool.h"

namespace refscan {

std::string_view DeviationKindName(DeviationKind kind) {
  switch (kind) {
    case DeviationKind::kReturnError:
      return "Return-Error";
    case DeviationKind::kReturnNull:
      return "Return-NULL";
  }
  return "?";
}

std::vector<DeviationReport> DetectDeviations(const SourceTree& tree, KnowledgeBase kb,
                                              size_t jobs) {
  // Parsing dominates here; fan it out. Discovery and the report walk stay
  // serial (discovery mutates the KB, the walk is trivial), and the final
  // sort makes the output order thread-count-independent anyway.
  std::vector<const SourceFile*> files;
  files.reserve(tree.size());
  for (const auto& [path, file] : tree.files()) {
    files.push_back(&file);
  }
  ThreadPool pool(jobs);
  std::vector<TranslationUnit> units =
      ParallelMap(pool, files.size(), [&](size_t i) { return ParseFile(*files[i]); });
  for (int round = 0; round < 2; ++round) {
    for (const TranslationUnit& unit : units) {
      kb.DiscoverFromUnit(unit);
    }
  }

  std::vector<DeviationReport> reports;
  for (const TranslationUnit& unit : units) {
    for (const FunctionDef& fn : unit.functions) {
      const RefApiInfo* api = kb.FindApi(fn.name);
      if (api == nullptr || api->direction != RefDirection::kIncrease) {
        continue;
      }
      auto base = [&](DeviationKind kind) {
        DeviationReport report;
        report.kind = kind;
        report.api = fn.name.str();
        report.file = unit.path;
        report.line = fn.line;
        report.hidden = api->hidden;
        return report;
      };
      if (api->returns_error) {
        DeviationReport report = base(DeviationKind::kReturnError);
        report.note = StrFormat(
            "%s() raises the refcount before it can fail; every caller must decrement on "
            "*all* paths, including the error path",
            fn.name.c_str());
        reports.push_back(std::move(report));
      }
      if (api->may_return_null) {
        DeviationReport report = base(DeviationKind::kReturnNull);
        report.note = StrFormat("%s() hands back the object pointer, which may be NULL; "
                                "callers must check before dereferencing",
                                fn.name.c_str());
        reports.push_back(std::move(report));
      }
    }
  }
  std::sort(reports.begin(), reports.end(),
            [](const DeviationReport& a, const DeviationReport& b) {
              if (a.file != b.file) {
                return a.file < b.file;
              }
              return a.line < b.line;
            });
  return reports;
}

}  // namespace refscan
