#include "src/kb/kb.h"

#include <algorithm>

#include "src/cfg/cfg.h"
#include "src/support/strings.h"

namespace refscan {

namespace {

// Direct refcounter field types (the paper's "basic structures", §5).
bool IsRefcounterFieldType(std::string_view type, std::string_view field_name) {
  if (type.find("refcount_t") != std::string_view::npos ||
      type.find("kref") != std::string_view::npos ||
      type.find("kobject") != std::string_view::npos) {
    return true;
  }
  if (type.find("atomic_t") != std::string_view::npos ||
      type.find("atomic_long_t") != std::string_view::npos) {
    const std::string lower = ToLower(field_name);
    return lower.find("ref") != std::string::npos || lower.find("cnt") != std::string::npos ||
           lower.find("count") != std::string::npos || lower.find("users") != std::string::npos;
  }
  return false;
}

// Extracts "X" from a field type like "struct X" / "const struct X".
std::string StructTag(std::string_view type) {
  const auto words = SplitWhitespace(type);
  for (size_t i = 0; i + 1 < words.size(); ++i) {
    if (words[i] == "struct" || words[i] == "union") {
      std::string tag(words[i + 1]);
      while (!tag.empty() && tag.back() == '*') {
        tag.pop_back();
      }
      return tag;
    }
  }
  return {};
}

bool TypeIsPointer(std::string_view type) {
  return type.find('*') != std::string_view::npos;
}

// Mirrors the identifier-word definition in strings.cc: words are
// alphanumeric runs, '_' is a separator.
bool IsNameWordChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9');
}

}  // namespace

const std::vector<std::string>& IncreaseKeywords() {
  static const std::vector<std::string> kWords = {"get",  "take",   "hold", "grab",
                                                  "retain", "acquire", "inc",  "ref"};
  return kWords;
}

const std::vector<std::string>& DecreaseKeywords() {
  static const std::vector<std::string> kWords = {"put",  "drop", "unhold", "release",
                                                  "dec",  "unref"};
  return kWords;
}

bool NameSoundsLikeRefcounting(std::string_view name) {
  // Equivalent to probing ContainsIdentifierWord once per keyword in
  // IncreaseKeywords() + DecreaseKeywords() + "refcount", but in a single
  // pass over the name: split into identifier words once and test each word
  // against the keyword set, dispatching on (length, first char). Runs for
  // every candidate function during discovery.
  auto lower = [](char c) {
    return (c >= 'A' && c <= 'Z') ? static_cast<char>(c + ('a' - 'A')) : c;
  };
  auto word_is_keyword = [&](const char* p, size_t n) {
    char w[8];
    if (n > 8) {
      return false;
    }
    for (size_t k = 0; k < n; ++k) {
      w[k] = lower(p[k]);
    }
    const std::string_view word(w, n);
    switch (n) {
      case 3:
        return word == "get" || word == "inc" || word == "ref" || word == "put" || word == "dec";
      case 4:
        return word == "take" || word == "hold" || word == "grab" || word == "drop";
      case 5:
        return word == "unref";
      case 6:
        return word == "retain" || word == "unhold";
      case 7:
        return word == "acquire" || word == "release";
      case 8:
        return word == "refcount";
      default:
        return false;
    }
  };
  size_t i = 0;
  while (i < name.size()) {
    while (i < name.size() && !IsNameWordChar(name[i])) {
      ++i;
    }
    const size_t start = i;
    while (i < name.size() && IsNameWordChar(name[i])) {
      ++i;
    }
    if (i > start && word_is_keyword(name.data() + start, i - start)) {
      return true;
    }
  }
  return false;
}

const std::vector<std::pair<std::string, std::string>>& PairedOpsFields() {
  static const std::vector<std::pair<std::string, std::string>> kPairs = {
      {"probe", "remove"},      // platform_driver
      {"probe", "disconnect"},  // usb_driver
      {"open", "release"},      // file_operations
      {"connect", "shutdown"},  // proto_ops
      {"bind", "unbind"},       // component ops
      {"attach", "detach"},
  };
  return kPairs;
}

std::string PairedReleaseWord(std::string_view acquire_word) {
  static const std::vector<std::pair<std::string, std::string>> kPairs = {
      {"register", "unregister"}, {"create", "destroy"}, {"init", "uninit"},
      {"init", "exit"},           {"open", "close"},     {"start", "stop"},
      {"add", "del"},             {"alloc", "free"},     {"enable", "disable"},
      {"attach", "detach"},       {"probe", "remove"},
  };
  for (const auto& [a, r] : kPairs) {
    if (acquire_word == a) {
      return r;
    }
  }
  return {};
}

bool KnowledgeBase::IsFreeFunction(std::string_view name) {
  static constexpr std::string_view kFrees[] = {"kfree",      "vfree",  "kvfree", "kzfree",
                                                "devm_kfree", "kmem_cache_free"};
  for (std::string_view f : kFrees) {
    if (name == f) {
      return true;
    }
  }
  return false;
}

bool KnowledgeBase::IsLockFunction(std::string_view name) {
  static constexpr std::string_view kLocks[] = {
      "mutex_lock",         "spin_lock",    "spin_lock_irq", "spin_lock_irqsave",
      "spin_lock_bh",       "read_lock",    "write_lock",    "down",
      "down_read",          "down_write",   "raw_spin_lock", "mutex_lock_interruptible",
  };
  for (std::string_view f : kLocks) {
    if (name == f) {
      return true;
    }
  }
  return false;
}

bool KnowledgeBase::IsUnlockFunction(std::string_view name) {
  static constexpr std::string_view kUnlocks[] = {
      "mutex_unlock", "spin_unlock", "spin_unlock_irq",  "spin_unlock_irqrestore",
      "spin_unlock_bh", "read_unlock", "write_unlock",   "up",
      "up_read",      "up_write",    "raw_spin_unlock",
  };
  for (std::string_view f : kUnlocks) {
    if (name == f) {
      return true;
    }
  }
  return false;
}

namespace {

// Interns a fixed name list once; membership is then a scan of ~a dozen
// 32-bit ids (the CPG runs these per call expression).
template <size_t N>
class SymbolNameSet {
 public:
  explicit SymbolNameSet(const std::string_view (&names)[N]) {
    for (size_t i = 0; i < N; ++i) {
      ids_[i] = Intern(names[i]).id();
    }
  }
  bool contains(Symbol s) const {
    for (const uint32_t id : ids_) {
      if (id == s.id()) {
        return true;
      }
    }
    return false;
  }

 private:
  uint32_t ids_[N];
};

}  // namespace

bool KnowledgeBase::IsFreeFunction(Symbol name) {
  static constexpr std::string_view kFrees[] = {"kfree",      "vfree",  "kvfree", "kzfree",
                                                "devm_kfree", "kmem_cache_free"};
  static const SymbolNameSet kSet(kFrees);
  return kSet.contains(name);
}

bool KnowledgeBase::IsLockFunction(Symbol name) {
  static constexpr std::string_view kLocks[] = {
      "mutex_lock",         "spin_lock",    "spin_lock_irq", "spin_lock_irqsave",
      "spin_lock_bh",       "read_lock",    "write_lock",    "down",
      "down_read",          "down_write",   "raw_spin_lock", "mutex_lock_interruptible",
  };
  static const SymbolNameSet kSet(kLocks);
  return kSet.contains(name);
}

bool KnowledgeBase::IsUnlockFunction(Symbol name) {
  static constexpr std::string_view kUnlocks[] = {
      "mutex_unlock", "spin_unlock", "spin_unlock_irq",  "spin_unlock_irqrestore",
      "spin_unlock_bh", "read_unlock", "write_unlock",   "up",
      "up_read",      "up_write",    "raw_spin_unlock",
  };
  static const SymbolNameSet kSet(kUnlocks);
  return kSet.contains(name);
}

KnowledgeBase::KnowledgeBase(const KnowledgeBase& other)
    : apis_(other.apis_),
      smart_loops_(other.smart_loops_),
      refcounted_structs_(other.refcounted_structs_),
      ownership_sinks_(other.ownership_sinks_),
      param_derefs_(other.param_derefs_),
      refcount_fields_(other.refcount_fields_),
      extra_free_fns_(other.extra_free_fns_) {
  RebuildApiIndex();
}

KnowledgeBase& KnowledgeBase::operator=(const KnowledgeBase& other) {
  if (this != &other) {
    apis_ = other.apis_;
    smart_loops_ = other.smart_loops_;
    refcounted_structs_ = other.refcounted_structs_;
    ownership_sinks_ = other.ownership_sinks_;
    param_derefs_ = other.param_derefs_;
    refcount_fields_ = other.refcount_fields_;
    extra_free_fns_ = other.extra_free_fns_;
    RebuildApiIndex();
  }
  return *this;
}

void KnowledgeBase::RebuildApiIndex() {
  api_index_.clear();
  api_index_.reserve(apis_.size());
  symbol_index_.clear();
  symbol_index_.reserve(apis_.size());
  for (const auto& [name, info] : apis_) {
    api_index_.emplace(name, &info);
    symbol_index_.emplace(Intern(name).id(), &info);
  }
  sink_index_.clear();
  for (const auto& [name, param] : ownership_sinks_) {
    sink_index_.emplace(Intern(name).id(), param);
  }
  deref_index_.clear();
  for (const auto& [name, params] : param_derefs_) {
    deref_index_.emplace(Intern(name).id(), &params);
  }
  field_index_.clear();
  for (const std::string& name : refcount_fields_) {
    field_index_.insert(Intern(name).id());
  }
  free_index_.clear();
  for (const std::string& name : extra_free_fns_) {
    free_index_.insert(Intern(name).id());
  }
}

RefApiInfo& KnowledgeBase::UpsertApi(RefApiInfo info) {
  const auto [it, inserted] = apis_.insert_or_assign(info.name, std::move(info));
  if (inserted) {
    api_index_.emplace(it->first, &it->second);
    symbol_index_.emplace(Intern(it->first).id(), &it->second);
  }
  return it->second;
}

void KnowledgeBase::AddApi(RefApiInfo info) {
  UpsertApi(std::move(info));
}

void KnowledgeBase::AddSmartLoop(SmartLoopInfo info) {
  smart_loops_.insert_or_assign(info.name, std::move(info));
}

void KnowledgeBase::AddRefcountedStruct(std::string name) {
  refcounted_structs_.insert(std::move(name));
}

void KnowledgeBase::AddRefcountField(std::string field_name) {
  field_index_.insert(Intern(field_name).id());
  refcount_fields_.insert(std::move(field_name));
}

void KnowledgeBase::AddFreeFunction(std::string name) {
  free_index_.insert(Intern(name).id());
  extra_free_fns_.insert(std::move(name));
}

bool KnowledgeBase::IsRefcountField(std::string_view field_name) const {
  return refcount_fields_.contains(field_name);
}

bool KnowledgeBase::IsRefcountField(Symbol field_name) const {
  return !field_name.empty() && field_index_.contains(field_name.id());
}

bool KnowledgeBase::IsFreeApi(Symbol name) const {
  return IsFreeFunction(name) || (!name.empty() && free_index_.contains(name.id()));
}

bool KnowledgeBase::IsFreeApi(std::string_view name) const {
  return IsFreeFunction(name) || extra_free_fns_.contains(name);
}

const RefApiInfo* KnowledgeBase::FindApi(Symbol name) const {
  if (name.empty()) {
    return nullptr;
  }
  const auto it = symbol_index_.find(name.id());
  if (it != symbol_index_.end()) {
    return it->second;
  }
  // Rare fallback: kernel-internal "__" variants resolve via the text path.
  const std::string_view text = name.view();
  return text.starts_with("_") ? FindApi(text) : nullptr;
}

const RefApiInfo* KnowledgeBase::FindApi(std::string_view name) const {
  auto it = api_index_.find(name);
  if (it != api_index_.end()) {
    return it->second;
  }
  // Kernel-internal "__" variants share the public API's behaviour
  // (__of_find_matching_node, __pm_runtime_get_sync, ...).
  if (!name.starts_with("_")) {
    return nullptr;
  }
  while (name.starts_with("_")) {
    name.remove_prefix(1);
  }
  it = api_index_.find(name);
  return it == api_index_.end() ? nullptr : it->second;
}

const SmartLoopInfo* KnowledgeBase::FindSmartLoop(std::string_view name) const {
  auto it = smart_loops_.find(name);
  return it == smart_loops_.end() ? nullptr : &it->second;
}

bool KnowledgeBase::IsRefcountedStruct(std::string_view struct_name) const {
  return refcounted_structs_.find(struct_name) != refcounted_structs_.end();
}

KnowledgeBase KnowledgeBase::BuiltIn() {
  KnowledgeBase kb;

  auto add = [&kb](RefApiInfo info) { kb.UpsertApi(std::move(info)); };

  constexpr auto kInc = RefDirection::kIncrease;
  constexpr auto kDec = RefDirection::kDecrease;

  // ----- General refcounting APIs (§5 "General Refcounting APIs").
  for (const char* name : {"refcount_inc", "kref_get", "kobject_get", "atomic_inc"}) {
    add({.name = name, .direction = kInc, .category = ApiCategory::kGeneral});
  }
  for (const char* name : {"refcount_dec", "kref_put", "kobject_put", "atomic_dec"}) {
    add({.name = name, .direction = kDec, .category = ApiCategory::kGeneral});
  }
  // The *_dec_and_test family returns true exactly at the 1 -> 0 transition
  // (P11 keys on tests_zero; SNIPPETS.md refcount_dec_and_test).
  for (const char* name :
       {"refcount_dec_and_test", "atomic_dec_and_test", "atomic_long_dec_and_test"}) {
    add({.name = name, .direction = kDec, .category = ApiCategory::kGeneral,
         .tests_zero = true});
  }

  // ----- Specific (typed wrapper) APIs.
  add({.name = "get_device", .direction = kInc, .category = ApiCategory::kSpecific,
       .returns_object = true});
  add({.name = "put_device", .direction = kDec, .category = ApiCategory::kSpecific});
  add({.name = "of_node_get", .direction = kInc, .category = ApiCategory::kSpecific,
       .returns_object = true});
  add({.name = "of_node_put", .direction = kDec, .category = ApiCategory::kSpecific});
  add({.name = "dev_hold", .direction = kInc, .category = ApiCategory::kSpecific});
  add({.name = "dev_put", .direction = kDec, .category = ApiCategory::kSpecific});
  add({.name = "sock_hold", .direction = kInc, .category = ApiCategory::kSpecific});
  add({.name = "sock_put", .direction = kDec, .category = ApiCategory::kSpecific});
  add({.name = "usb_serial_get", .direction = kInc, .category = ApiCategory::kSpecific});
  add({.name = "usb_serial_put", .direction = kDec, .category = ApiCategory::kSpecific});
  add({.name = "fwnode_handle_get", .direction = kInc, .category = ApiCategory::kSpecific,
       .returns_object = true});
  add({.name = "fwnode_handle_put", .direction = kDec, .category = ApiCategory::kSpecific});
  add({.name = "pm_runtime_put", .direction = kDec, .category = ApiCategory::kSpecific});
  add({.name = "pm_runtime_put_sync", .direction = kDec, .category = ApiCategory::kSpecific});
  add({.name = "pm_runtime_put_noidle", .direction = kDec, .category = ApiCategory::kSpecific});
  add({.name = "lpfc_bsg_event_ref", .direction = kInc, .category = ApiCategory::kSpecific});

  // ----- Return-Error deviants (𝒢_E, §5.1.1 / Table 6 "ID Return-Error").
  add({.name = "pm_runtime_get_sync", .direction = kInc, .category = ApiCategory::kSpecific,
       .returns_error = true});
  add({.name = "kobject_init_and_add", .direction = kInc, .category = ApiCategory::kSpecific,
       .returns_error = true});

  // ----- Return-NULL deviants (𝒢_N, §5.1.2 / Table 6 "ID Return-NULL").
  add({.name = "mdesc_grab", .direction = kInc, .category = ApiCategory::kSpecific,
       .may_return_null = true, .returns_object = true, .object_param = -1});
  add({.name = "amdgpu_device_ip_init", .direction = kInc, .category = ApiCategory::kSpecific,
       .may_return_null = true, .returns_object = true, .object_param = -1});

  // ----- Refcounting-embedded, hidden APIs (Table 6 "H Inc./Dec.-Hidden").
  auto embedded = [&](const char* name, int consumed = -1) {
    add({.name = name, .direction = kInc, .category = ApiCategory::kEmbedded,
         .returns_object = true, .object_param = -1, .consumed_param = consumed,
         .hidden = true});
  };
  embedded("of_find_compatible_node", 0);
  embedded("of_find_matching_node", 0);
  embedded("of_find_node_by_name", 0);
  embedded("of_find_node_by_path");
  embedded("of_find_node_by_phandle");
  embedded("of_find_node_by_type", 0);
  embedded("of_parse_phandle");
  embedded("of_get_parent");
  embedded("of_get_child_by_name");
  embedded("of_get_next_child", 0);
  embedded("of_graph_get_port_by_id");
  embedded("of_graph_get_port_parent");
  embedded("of_get_node");
  embedded("bus_find_device");
  embedded("class_find_device");
  embedded("device_initialize");
  embedded("ip_dev_find");
  embedded("afs_alloc_read");
  embedded("perf_cpu_map__new");
  embedded("setup_find_cpu_node");
  embedded("gfs2_glock_nq_init");
  embedded("tipc_node_find");
  embedded("sockfd_lookup");
  embedded("fc_rport_lookup");
  embedded("rxrpc_lookup_peer");
  embedded("lookup_bdev");
  embedded("tcp_ulp_find_autoload");
  embedded("ipv4_neigh_lookup");
  embedded("mpol_shared_policy_lookup");
  embedded("usb_anchor_urb");
  embedded("tomoyo_mount_acl");
  embedded("nvmet_fc_tgt_q_get");
  add({.name = "nvmet_fc_tgt_q_put", .direction = kDec, .category = ApiCategory::kSpecific});

  // The embedded APIs that *sound* like refcounting keep hidden=false where
  // the keyword really is the dominant meaning; of_get_* keep hidden=true
  // per the paper (developers read them as pointer accessors).
  // (Handled above: all of_* embedded entries stay hidden.)

  // ----- Smartloops (ℳ_SL, Table 6 "H Complete-Hidden").
  auto loop = [&](const char* name, const char* api) {
    kb.smart_loops_.insert_or_assign(name,
                                     SmartLoopInfo{name, /*iterator_arg=*/0, api});
  };
  loop("for_each_matching_node", "of_find_matching_node");
  loop("for_each_child_of_node", "of_get_next_child");
  loop("for_each_available_child_of_node", "of_get_next_available_child");
  loop("for_each_endpoint_of_node", "of_graph_get_next_endpoint");
  loop("for_each_node_by_name", "of_find_node_by_name");
  loop("for_each_node_by_type", "of_find_node_by_type");
  loop("for_each_compatible_node", "of_find_compatible_node");
  loop("device_for_each_child_node", "fwnode_get_next_child_node");
  loop("fwnode_for_each_parent_node", "fwnode_get_parent");
  loop("fwnode_for_each_child_node", "fwnode_get_next_child_node");
  loop("for_each_cpu_node", "setup_find_cpu_node");

  // Iterator arg positions that differ from 0.
  kb.smart_loops_.at("for_each_child_of_node").iterator_arg = 1;
  kb.smart_loops_.at("for_each_available_child_of_node").iterator_arg = 1;
  kb.smart_loops_.at("device_for_each_child_node").iterator_arg = 1;
  kb.smart_loops_.at("fwnode_for_each_child_node").iterator_arg = 1;

  // ----- Built-in ownership sinks: registering a release callback hands
  // the reference to the devres machinery (devm_add_action(dev, fn, data)
  // — the data argument, index 2 — will be released by fn at teardown).
  kb.AddOwnershipSink("devm_add_action", 2);
  kb.AddOwnershipSink("devm_add_action_or_reset", 2);

  // ----- Refcounted base structures.
  for (const char* s : {"kref", "kobject", "device", "device_node", "sock", "net_device",
                        "usb_serial", "fwnode_handle", "nvmem_device"}) {
    kb.refcounted_structs_.insert(s);
  }

  return kb;
}

DiscoveryFacts ExtractDiscoveryFacts(const TranslationUnit& unit) {
  DiscoveryFacts facts;

  facts.structs.reserve(unit.structs.size());
  for (const StructDef& def : unit.structs) {
    DiscoveryFacts::Struct s;
    s.name = def.name.str();
    s.fields.reserve(def.fields.size());
    for (const StructField& field : def.fields) {
      DiscoveryFacts::Field f;
      f.direct_refcounter = IsRefcounterFieldType(field.type.view(), field.name.view());
      f.nested_tag = StructTag(field.type.view());
      f.name = field.name.str();
      s.fields.push_back(std::move(f));
    }
    facts.structs.push_back(std::move(s));
  }

  for (const FunctionDef& fn : unit.functions) {
    if (fn.body == nullptr) {
      continue;
    }
    DiscoveryFacts::Function f;
    f.name = fn.name.str();
    f.returns_pointer = TypeIsPointer(fn.return_type.view());

    SymbolSet locals;
    ForEachStmt(*fn.body, [&f, &locals](const Stmt& s) {
      if (s.kind == Stmt::Kind::kDecl && !s.name.empty()) {
        locals.insert(s.name);
      }
      if (s.kind == Stmt::Kind::kReturn && s.expr != nullptr) {
        if (s.expr->kind == Expr::Kind::kIdent && s.expr->value == "NULL") {
          f.has_return_null = true;
        }
        if (ReturnsErrorCode(s)) {
          f.has_error_return = true;
        }
      }
    });

    ForEachExpr(*fn.body, [&](const Expr& e) {
      if (e.kind == Expr::Kind::kCall) {
        const Symbol callee = e.CalleeName();
        // An empty callee (function-pointer call) can never resolve in the
        // KB, so it contributes no event.
        if (!callee.empty()) {
          DiscoveryFacts::RefEvent ev;
          ev.is_call = true;
          ev.callee = callee.str();
          if (e.args.size() > 1 && e.args[1] != nullptr &&
              e.args[1]->kind == Expr::Kind::kIdent) {
            for (size_t p = 0; p < fn.params.size(); ++p) {
              if (fn.params[p].name == e.args[1]->value) {
                ev.arg1_param = static_cast<int>(p);
              }
            }
          }
          f.events.push_back(std::move(ev));
        }
      }
      if (e.kind == Expr::Kind::kUnary && (e.value == "++" || e.value == "--") &&
          !e.args.empty() && e.args[0] != nullptr && e.args[0]->kind == Expr::Kind::kMember) {
        const std::string lower = ToLower(e.args[0]->value.view());
        if (lower.find("ref") != std::string::npos || lower.find("count") != std::string::npos) {
          DiscoveryFacts::RefEvent ev;
          ev.increase = e.value == "++";
          f.events.push_back(std::move(ev));
        }
      }
      // Ownership-sink shape: a parameter (bare identifier rhs) assigned
      // into a member chain rooted outside the function's locals. The last
      // matching assignment wins, mirroring insert_or_assign order.
      if (e.kind == Expr::Kind::kAssign && e.args.size() >= 2 && e.args[0] != nullptr &&
          e.args[1] != nullptr) {
        const Expr& lhs = *e.args[0];
        const Expr& rhs = *e.args[1];
        if (rhs.kind == Expr::Kind::kIdent && lhs.kind == Expr::Kind::kMember) {
          int param_index = -1;
          for (size_t p = 0; p < fn.params.size(); ++p) {
            if (fn.params[p].name == rhs.value) {
              param_index = static_cast<int>(p);
            }
          }
          if (param_index >= 0) {
            const Expr* root = &lhs;
            while (root->kind == Expr::Kind::kMember && !root->args.empty() &&
                   root->args[0] != nullptr) {
              root = root->args[0];
            }
            if (root->kind == Expr::Kind::kIdent && !locals.contains(root->value) &&
                root->value != rhs.value) {
              f.sink_param = param_index;
            }
          }
        }
      }
    });
    facts.functions.push_back(std::move(f));
  }

  for (const MacroDef& macro : unit.macros) {
    // Object-like macros and bodies without a loop can never classify as
    // smartloops, independent of KB state — prune them at extraction.
    if (macro.params.empty() || macro.body.find("for") == std::string::npos) {
      continue;
    }
    DiscoveryFacts::Macro m;
    m.name = macro.name.str();
    m.params.reserve(macro.params.size());
    for (const Symbol p : macro.params) {
      m.params.push_back(p.str());
    }
    m.body = macro.body;
    facts.macros.push_back(std::move(m));
  }
  return facts;
}

void KnowledgeBase::DiscoverFromUnit(const TranslationUnit& unit, int nesting_threshold) {
  DiscoverFromFacts(ExtractDiscoveryFacts(unit), nesting_threshold);
}

void KnowledgeBase::DiscoverFromFacts(const DiscoveryFacts& facts, int nesting_threshold) {
  DiscoverStructs(facts, nesting_threshold);
  DiscoverFunctions(facts);
  DiscoverMacros(facts);
  DiscoverOwnershipSinks(facts);
}

int KnowledgeBase::FindOwnershipSink(std::string_view function_name) const {
  auto it = ownership_sinks_.find(function_name);
  return it == ownership_sinks_.end() ? -1 : it->second;
}

int KnowledgeBase::FindOwnershipSink(Symbol function_name) const {
  if (function_name.empty()) {
    return -1;
  }
  const auto it = sink_index_.find(function_name.id());
  return it == sink_index_.end() ? -1 : it->second;
}

void KnowledgeBase::AddOwnershipSink(std::string name, int param_index) {
  const Symbol sym = Intern(name);
  ownership_sinks_.insert_or_assign(std::move(name), param_index);
  sink_index_.insert_or_assign(sym.id(), param_index);
}

const std::vector<int>* KnowledgeBase::FindParamDerefs(std::string_view name) const {
  const auto it = param_derefs_.find(name);
  return it == param_derefs_.end() ? nullptr : &it->second;
}

const std::vector<int>* KnowledgeBase::FindParamDerefs(Symbol name) const {
  if (name.empty()) {
    return nullptr;
  }
  const auto it = deref_index_.find(name.id());
  return it == deref_index_.end() ? nullptr : it->second;
}

void KnowledgeBase::AddParamDerefs(std::string name, std::vector<int> param_indices) {
  const Symbol sym = Intern(name);
  const auto [it, ignored] =
      param_derefs_.insert_or_assign(std::move(name), std::move(param_indices));
  deref_index_.insert_or_assign(sym.id(), &it->second);
}

RefApiInfo* KnowledgeBase::FindApiMutable(std::string_view name) {
  const auto it = apis_.find(name);
  return it == apis_.end() ? nullptr : &it->second;
}

void KnowledgeBase::DiscoverOwnershipSinks(const DiscoveryFacts& facts) {
  for (const DiscoveryFacts::Function& fn : facts.functions) {
    if (fn.sink_param < 0 || ownership_sinks_.contains(fn.name)) {
      continue;
    }
    AddOwnershipSink(fn.name, fn.sink_param);
  }
}

void KnowledgeBase::DiscoverStructs(const DiscoveryFacts& facts, int nesting_threshold) {
  // Direct refcounter fields feed the refcount-field name registry (P10):
  // a later raw ++/--/= on a member with one of these names bypasses the
  // checked APIs. Independent of the struct classification below, so a
  // struct already known (built-in or earlier unit) still contributes.
  for (const DiscoveryFacts::Struct& def : facts.structs) {
    for (const DiscoveryFacts::Field& field : def.fields) {
      if (field.direct_refcounter && !field.name.empty()) {
        AddRefcountField(field.name);
      }
    }
  }

  // Level 0: direct refcounter fields. Levels 1..threshold: a field whose
  // struct type was classified in a *previous* level (per-level snapshot so
  // one pass advances nesting depth by exactly one).
  for (int level = 0; level <= nesting_threshold; ++level) {
    std::set<std::string> added;
    for (const DiscoveryFacts::Struct& def : facts.structs) {
      if (refcounted_structs_.contains(def.name)) {
        continue;
      }
      for (const DiscoveryFacts::Field& field : def.fields) {
        const bool direct = level == 0 && field.direct_refcounter;
        const bool nested = level > 0 && !field.nested_tag.empty() &&
                            refcounted_structs_.contains(field.nested_tag);
        if (direct || nested) {
          added.insert(def.name);
          break;
        }
      }
    }
    if (level > 0 && added.empty()) {
      break;
    }
    refcounted_structs_.insert(added.begin(), added.end());
  }
}

void KnowledgeBase::DiscoverFunctions(const DiscoveryFacts& facts) {
  for (const DiscoveryFacts::Function& fn : facts.functions) {
    if (api_index_.contains(fn.name)) {
      continue;
    }

    // Replay the body's refcounting operations against the *current* KB:
    // calls to known APIs, and inc/dec of a refcounter member
    // (`refcount_inc(&x->refcnt)` is a call; `x->refcnt++` is a unary op).
    bool increases = false;
    bool decreases = false;
    int consumed_param = -1;

    for (const DiscoveryFacts::RefEvent& ev : fn.events) {
      if (ev.is_call) {
        const RefApiInfo* callee = FindApi(ev.callee);
        if (callee != nullptr) {
          if (callee->direction == RefDirection::kIncrease) {
            increases = true;
          } else {
            decreases = true;
            // Does this decrement hit one of our parameters? (of_find_*(from))
            if (ev.arg1_param >= 0) {
              consumed_param = ev.arg1_param;
            }
          }
        }
      } else {
        (ev.increase ? increases : decreases) = true;
      }
    }

    if (!increases && !decreases) {
      continue;
    }

    RefApiInfo info;
    info.name = fn.name;
    // A function that both increases (the returned node) and decreases (the
    // `from` argument) is the find-like shape; classify by its primary
    // effect: the increase it hands to the caller.
    info.direction = increases ? RefDirection::kIncrease : RefDirection::kDecrease;
    info.hidden = !NameSoundsLikeRefcounting(fn.name);
    info.category = info.hidden ? ApiCategory::kEmbedded : ApiCategory::kSpecific;
    info.returns_object = fn.returns_pointer;
    info.object_param = info.returns_object ? -1 : 0;
    info.may_return_null = info.returns_object && fn.has_return_null &&
                           info.direction == RefDirection::kIncrease;
    info.returns_error = !info.returns_object && fn.has_error_return &&
                         info.direction == RefDirection::kIncrease;
    info.consumed_param = increases ? consumed_param : -1;
    info.discovered = true;
    UpsertApi(std::move(info));
  }
}

void KnowledgeBase::DiscoverMacros(const DiscoveryFacts& facts) {
  for (const DiscoveryFacts::Macro& macro : facts.macros) {
    if (smart_loops_.contains(macro.name)) {
      continue;
    }
    // The macro is a smartloop if its body invokes a refcounting API
    // (typically an embedded find-like one). A matching API name must end
    // immediately before some '(' in the body, i.e. be a suffix of the
    // identifier run preceding that paren — so one scan over the body with
    // hashed suffix probes replaces a substring search per known API, and
    // taking the lexicographically smallest hit reproduces the sorted-map
    // iteration order of the old per-API probe exactly.
    const std::string_view body = macro.body;
    auto word_char = [](char c) {
      return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
             c == '_';
    };
    std::string_view embedded_sv;
    for (size_t pos = body.find('('); pos != std::string_view::npos;
         pos = body.find('(', pos + 1)) {
      size_t start = pos;
      while (start > 0 && word_char(body[start - 1])) {
        --start;
      }
      for (size_t s = start; s < pos; ++s) {
        const std::string_view cand = body.substr(s, pos - s);
        if (api_index_.contains(cand) && (embedded_sv.empty() || cand < embedded_sv)) {
          embedded_sv = cand;
        }
      }
    }
    const std::string embedded(embedded_sv);
    if (embedded.empty()) {
      continue;
    }
    SmartLoopInfo loop;
    loop.name = macro.name;
    loop.embedded_api = embedded;
    // The iterator is the macro parameter assigned from the embedded API:
    // "dn = of_find_matching_node(...)". Fall back to parameter 0.
    loop.iterator_arg = 0;
    for (size_t p = 0; p < macro.params.size(); ++p) {
      const std::string pattern = macro.params[p] + " = " + embedded;
      const std::string tight = macro.params[p] + "=" + embedded;
      if (macro.body.find(pattern) != std::string::npos ||
          macro.body.find(tight) != std::string::npos) {
        loop.iterator_arg = static_cast<int>(p);
        break;
      }
    }
    smart_loops_.insert_or_assign(loop.name, std::move(loop));
  }
}

const std::vector<std::string>& KnownDialects() {
  static const std::vector<std::string> kDialects = {"glib", "uacpi"};
  return kDialects;
}

bool ApplyDialect(KnowledgeBase& kb, std::string_view dialect) {
  constexpr auto kInc = RefDirection::kIncrease;
  constexpr auto kDec = RefDirection::kDecrease;
  auto add = [&kb](RefApiInfo info) { kb.AddApi(std::move(info)); };

  if (dialect == "uacpi") {
    // uACPI shareables (SNIPPETS.md): reference_count with the sticky
    // BUGGED_REFCOUNT saturation sentinel; ref/unref return the *previous*
    // value, so unref() == 1 means the last reference just dropped.
    add({.name = "uacpi_shareable_init", .direction = kInc,
         .category = ApiCategory::kSpecific});
    add({.name = "uacpi_shareable_ref", .direction = kInc,
         .category = ApiCategory::kSpecific});
    add({.name = "uacpi_shareable_unref", .direction = kDec,
         .category = ApiCategory::kSpecific, .tests_zero = true});
    add({.name = "uacpi_shareable_unref_and_delete_if_last", .direction = kDec,
         .category = ApiCategory::kSpecific});
    kb.AddRefcountedStruct("uacpi_shareable");
    kb.AddRefcountField("reference_count");
    kb.AddFreeFunction("uacpi_free");
    kb.AddFreeFunction("uacpi_kernel_free");
    return true;
  }

  if (dialect == "glib") {
    add({.name = "g_object_ref", .direction = kInc, .category = ApiCategory::kSpecific,
         .returns_object = true, .object_param = -1});
    add({.name = "g_object_ref_sink", .direction = kInc,
         .category = ApiCategory::kSpecific, .returns_object = true, .object_param = -1});
    add({.name = "g_object_unref", .direction = kDec, .category = ApiCategory::kSpecific});
    add({.name = "g_clear_object", .direction = kDec, .category = ApiCategory::kSpecific});
    add({.name = "g_atomic_int_dec_and_test", .direction = kDec,
         .category = ApiCategory::kGeneral, .tests_zero = true});
    kb.AddRefcountedStruct("GObject");
    kb.AddRefcountField("ref_count");
    kb.AddFreeFunction("g_free");
    kb.AddFreeFunction("g_slice_free");
    return true;
  }

  return false;
}

}  // namespace refscan
