// Dataset statistics (§4 "General Findings").
//
// Everything here is computed from the *mined* dataset (histmine/miner.h),
// not from generator ground truth: the calibration lives in the history
// generator, the analysis pipeline is honest. Each function corresponds to
// one paper artifact:
//
//   TaxonomyBreakdown   — Table 2 / Findings 1-2 (impacts + bug kinds)
//   GrowthTrend         — Figure 1 (bugs per year, 2005-2022)
//   SubsystemBreakdown  — Figure 2 (counts per subsystem + density per KLOC)
//   LifetimeAnalysis    — Figure 3 / Findings 4-5 (latent periods, spans)

#ifndef REFSCAN_STATS_STATS_H_
#define REFSCAN_STATS_STATS_H_

#include <map>
#include <string>
#include <vector>

#include "src/histmine/miner.h"

namespace refscan {

struct Taxonomy {
  int total = 0;
  int leak = 0;  // Finding 1: 741 / 71.7%
  int uaf = 0;   // Finding 2: 292 / 28.3%
  std::map<HistBugKind, int> per_kind;
  int uad = 0;   // subset of kMisplacedDec (94 / 9.1%)

  double Fraction(int count) const { return total > 0 ? static_cast<double>(count) / total : 0; }
  int MissingDec() const;  // intra + inter
  int MissingInc() const;
};
Taxonomy TaxonomyBreakdown(const std::vector<MinedBug>& dataset);

// Figure 1: number of bugs fixed per year.
std::map<int, int> GrowthTrend(const std::vector<MinedBug>& dataset);

struct SubsystemStats {
  std::string name;
  int bugs = 0;
  double kloc = 0;     // from the subsystem-size table
  double density = 0;  // bugs per KLOC
};
// Sorted by bug count descending. KLOC sizes come from
// Figure2SubsystemTargets() (standing in for `wc -l` over a real tree).
std::vector<SubsystemStats> SubsystemBreakdown(const std::vector<MinedBug>& dataset);

struct LifetimeStats {
  int total = 0;             // dataset size
  int with_fixes_tag = 0;    // 567 in the paper
  int over_one_year = 0;     // Finding 4: 429 (75.7% of tagged)
  int over_ten_years = 0;    // Finding 4: 19
  int over_ten_years_uaf = 0;  // Finding 4: 7 of the 19 lead to UAF
  int ancient_to_modern = 0;   // Finding 5: 23 from v2.6 to v5.x/v6.x
  int span_v4_to_v5 = 0;       // ~135
  int span_v3_to_v5 = 0;       // ~80
  int within_v5 = 0;           // ~189 introduced and fixed in v5.x
  std::vector<std::pair<int, int>> spans;  // (introduced, fixed) release pairs (Figure 3)

  // "How many kernels a refcounting bug can infect" (§4.3): number of
  // mainline releases each tagged bug shipped in, averaged / maximum.
  double mean_releases_infected = 0;
  int max_releases_infected = 0;
};
LifetimeStats LifetimeAnalysis(const std::vector<MinedBug>& dataset);

}  // namespace refscan

#endif  // REFSCAN_STATS_STATS_H_
