#include "src/stats/stats.h"

#include <algorithm>

namespace refscan {

int Taxonomy::MissingDec() const {
  int n = 0;
  for (HistBugKind kind : {HistBugKind::kMissingDecIntra, HistBugKind::kMissingDecInter}) {
    auto it = per_kind.find(kind);
    n += it != per_kind.end() ? it->second : 0;
  }
  return n;
}

int Taxonomy::MissingInc() const {
  int n = 0;
  for (HistBugKind kind : {HistBugKind::kMissingIncIntra, HistBugKind::kMissingIncInter}) {
    auto it = per_kind.find(kind);
    n += it != per_kind.end() ? it->second : 0;
  }
  return n;
}

Taxonomy TaxonomyBreakdown(const std::vector<MinedBug>& dataset) {
  Taxonomy taxonomy;
  taxonomy.total = static_cast<int>(dataset.size());
  for (const MinedBug& bug : dataset) {
    (bug.is_leak ? taxonomy.leak : taxonomy.uaf)++;
    taxonomy.per_kind[bug.kind]++;
    taxonomy.uad += bug.is_uad ? 1 : 0;
  }
  return taxonomy;
}

std::map<int, int> GrowthTrend(const std::vector<MinedBug>& dataset) {
  std::map<int, int> per_year;
  const auto& timeline = ReleaseTimeline();
  for (const MinedBug& bug : dataset) {
    per_year[timeline[static_cast<size_t>(bug.fixed_release)].year]++;
  }
  return per_year;
}

std::vector<SubsystemStats> SubsystemBreakdown(const std::vector<MinedBug>& dataset) {
  std::map<std::string, int> counts;
  for (const MinedBug& bug : dataset) {
    counts[bug.subsystem]++;
  }
  std::vector<SubsystemStats> out;
  for (const SubsystemTarget& target : Figure2SubsystemTargets()) {
    SubsystemStats stats;
    stats.name = target.name;
    stats.kloc = target.kloc;
    auto it = counts.find(target.name);
    stats.bugs = it != counts.end() ? it->second : 0;
    stats.density = target.kloc > 0 ? stats.bugs / target.kloc : 0;
    counts.erase(target.name);
    out.push_back(std::move(stats));
  }
  // Subsystems outside the size table (should not happen with the
  // generator, but a real tree may differ).
  for (const auto& [name, bugs] : counts) {
    out.push_back(SubsystemStats{name, bugs, 0, 0});
  }
  std::sort(out.begin(), out.end(),
            [](const SubsystemStats& a, const SubsystemStats& b) { return a.bugs > b.bugs; });
  return out;
}

LifetimeStats LifetimeAnalysis(const std::vector<MinedBug>& dataset) {
  LifetimeStats stats;
  stats.total = static_cast<int>(dataset.size());
  const auto& timeline = ReleaseTimeline();
  for (const MinedBug& bug : dataset) {
    if (bug.introduced_release < 0) {
      continue;
    }
    ++stats.with_fixes_tag;
    const KernelRelease& intro = timeline[static_cast<size_t>(bug.introduced_release)];
    const KernelRelease& fixed = timeline[static_cast<size_t>(bug.fixed_release)];
    const double lifetime = ReleaseTime(fixed) - ReleaseTime(intro);
    if (lifetime > 1.0) {
      ++stats.over_one_year;
    }
    if (lifetime > 10.0) {
      ++stats.over_ten_years;
      if (!bug.is_leak) {
        ++stats.over_ten_years_uaf;
      }
    }
    if (intro.major == 2 && fixed.major >= 5) {
      ++stats.ancient_to_modern;
    }
    if (intro.major == 4 && fixed.major == 5) {
      ++stats.span_v4_to_v5;
    }
    if (intro.major == 3 && fixed.major == 5) {
      ++stats.span_v3_to_v5;
    }
    if (intro.major == 5 && fixed.major == 5) {
      ++stats.within_v5;
    }
    stats.spans.emplace_back(bug.introduced_release, bug.fixed_release);
  }
  std::sort(stats.spans.begin(), stats.spans.end());
  int total_infected = 0;
  for (const auto& [intro, fixed] : stats.spans) {
    const int infected = fixed - intro + 1;
    total_infected += infected;
    stats.max_releases_infected = std::max(stats.max_releases_infected, infected);
  }
  if (!stats.spans.empty()) {
    stats.mean_releases_infected = static_cast<double>(total_infected) /
                                   static_cast<double>(stats.spans.size());
  }
  return stats;
}

}  // namespace refscan
