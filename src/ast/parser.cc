#include "src/ast/parser.h"

#include <cctype>

#include "src/lexer/lexer.h"
#include "src/support/faultinject.h"
#include "src/support/governor.h"
#include "src/support/strings.h"

namespace refscan {

namespace {

// Tokens that can start/continue a type spelling.
bool IsTypeKeyword(std::string_view text) {
  // Probed for nearly every keyword token while scanning declarations;
  // dispatch on (length, first char) instead of a linear word list.
  switch (text.size()) {
    case 3:
      return text == "int";
    case 4:
      return text == "void" || text == "char" || text == "long" || text == "enum";
    case 5:
      switch (text[0]) {
        case 's': return text == "short";
        case 'f': return text == "float";
        case 'u': return text == "union";
        case 'c': return text == "const";
        case '_': return text == "_Bool";
        default: return false;
      }
    case 6:
      switch (text[0]) {
        case 'd': return text == "double";
        case 's': return text == "signed" || text == "struct" || text == "static";
        case 'e': return text == "extern";
        case 'i': return text == "inline";
        case 't': return text == "typeof";
        default: return false;
      }
    case 7:
      return text == "_Atomic";
    case 8:
      return text == "unsigned" || text == "volatile" || text == "register";
    case 10:
      return text == "__typeof__";
    default:
      return false;
  }
}

// Identifiers that commonly act as typedef names in kernel code; the parser
// also uses shape heuristics (ident ident / ident '*' ident), so this list
// only needs to cover declarations like `u32 x;`.
bool LooksLikeTypedefName(std::string_view text) {
  // Runs for nearly every identifier the statement/cast heuristics look at,
  // so it dispatches on length instead of scanning a name list.
  const size_t n = text.size();
  if (n >= 2 && text[n - 1] == 't' && text[n - 2] == '_') {
    return true;
  }
  switch (n) {
    case 2:  // u8 s8
      return (text[0] == 'u' || text[0] == 's') && text[1] == '8';
    case 3:  // u16 u32 u64 s16 s32 s64
      if (text[0] != 'u' && text[0] != 's') {
        return false;
      }
      return (text[1] == '1' && text[2] == '6') || (text[1] == '3' && text[2] == '2') ||
             (text[1] == '6' && text[2] == '4');
    case 4:
      return text == "bool";
    default:
      return false;
  }
}

class Parser {
 public:
  Parser(const SourceFile& file, const ParseOptions& options)
      : tokens_(Tokenize(file, &splices_)),
        cur_(tokens_),
        options_(options),
        arena_(std::make_shared<Arena>()) {
    unit_.path = file.path();
    unit_.arena = arena_;
  }

  TranslationUnit Parse() {
    while (!cur_.AtEnd()) {
      CheckDeadline("parser");
      ParseTopLevel();
    }
    return std::move(unit_);
  }

  // Exposed for ParseExpression().
  ExprPtr ParseFullExpr() { return ParseAssignment(); }
  std::shared_ptr<Arena> TakeArena() { return std::move(arena_); }

 private:
  // ---------------------------------------------------------------- tokens

  const Token& Peek(size_t ahead = 0) const { return cur_.Peek(ahead); }
  const Token& Next() { return cur_.Next(); }
  bool Eat(std::string_view text) { return cur_.Eat(text); }
  uint32_t Line() const { return Peek().line; }

  // Skips tokens until (and including) a ';' at brace depth zero, or until a
  // '}' that would close the current scope (left unconsumed).
  void SyncToStatementEnd() {
    ++recovery_events_;
    int depth = 0;
    while (!cur_.AtEnd()) {
      const Token& t = Peek();
      if (t.Is("{")) {
        ++depth;
      } else if (t.Is("}")) {
        if (depth == 0) {
          return;
        }
        --depth;
        if (depth == 0) {
          Next();
          // A closing brace at depth 0 also ends a statement (e.g. a
          // compound we failed to parse).
          if (Peek().Is(";")) {
            Next();
          }
          return;
        }
      } else if (t.Is(";") && depth == 0) {
        Next();
        return;
      }
      Next();
    }
  }

  // Skips a balanced token group starting at the current '(' / '{' / '['.
  void SkipBalanced() {
    const std::string_view open = Peek().text;
    std::string_view close;
    if (open == "(") {
      close = ")";
    } else if (open == "{") {
      close = "}";
    } else if (open == "[") {
      close = "]";
    } else {
      Next();
      return;
    }
    int depth = 0;
    while (!cur_.AtEnd()) {
      const Token& t = Next();
      if (t.text == open) {
        ++depth;
      } else if (t.text == close) {
        if (--depth == 0) {
          return;
        }
      }
    }
  }

  // GNU declaration noise: `__attribute__((...))` soup, `__extension__`,
  // `__restrict` qualifiers. Kernel headers drape these over nearly every
  // declaration; they carry nothing the checkers need but their parentheses
  // derail the declarator heuristics, so they are skipped wherever a
  // declaration may continue. Returns true if anything was consumed.
  bool SkipDeclNoise() {
    bool skipped = false;
    while (!cur_.AtEnd()) {
      const Token& t = Peek();
      if (t.IsIdent("__attribute__") || t.IsIdent("__attribute")) {
        Next();
        if (Peek().Is("(")) {
          SkipBalanced();
        }
        skipped = true;
        continue;
      }
      if (t.IsIdent("__extension__") || t.IsIdent("__restrict") || t.IsIdent("__restrict__")) {
        Next();
        skipped = true;
        continue;
      }
      break;
    }
    return skipped;
  }

  // True for type keywords that take a parenthesised operand the declarator
  // heuristics must step over: `typeof(expr)`, `__typeof__(expr)`,
  // `_Atomic(type)`.
  static bool IsParenTypeKeyword(std::string_view text) {
    return text == "typeof" || text == "__typeof__" || text == "_Atomic";
  }

  // Index of the '}' matching the '{' at token index `open_pos`, counting
  // raw punct braces only (string/char/preproc token text never counts), or
  // tokens_.size() when the file runs out before the brace closes.
  size_t FindMatchingBrace(size_t open_pos) const {
    int depth = 0;
    for (size_t i = open_pos; i < tokens_.size(); ++i) {
      const Token& t = tokens_[i];
      if (!t.Is(TokenKind::kPunct)) {
        continue;
      }
      if (t.text == "{") {
        ++depth;
      } else if (t.text == "}" && --depth == 0) {
        return i;
      }
    }
    return tokens_.size();
  }

  // ------------------------------------------------------------- top level

  void ParseTopLevel() {
    const Token& t = Peek();
    if (t.Is(TokenKind::kPreproc)) {
      ParsePreproc();
      return;
    }
    if (t.Is(";")) {
      Next();
      return;
    }
    if (t.Is("typedef")) {
      // typedef ... ; (may contain a struct body)
      while (!cur_.AtEnd() && !Peek().Is(";")) {
        if (Peek().Is("{")) {
          SkipBalanced();
        } else {
          Next();
        }
      }
      Eat(";");
      return;
    }
    if ((t.Is("struct") || t.Is("union")) &&
        ((Peek(1).Is(TokenKind::kIdentifier) && Peek(2).Is("{")) ||
         Peek(1).IsIdent("__attribute__") || Peek(1).IsIdent("__attribute"))) {
      ParseStructDef();
      return;
    }
    ParseDeclarationOrFunction();
  }

  void ParsePreproc() {
    const Token tok = Next();
    std::string_view text = tok.text;
    // Normalise continuations: replace `\`+optional trailing whitespace+
    // newline (the CRLF and `\`+spaces forms included) with a space.
    std::string joined;
    joined.reserve(text.size());
    for (size_t i = 0; i < text.size(); ++i) {
      if (text[i] == '\\') {
        size_t j = i + 1;
        while (j < text.size() &&
               (text[j] == ' ' || text[j] == '\t' || text[j] == '\r')) {
          ++j;
        }
        if (j < text.size() && text[j] == '\n') {
          joined.push_back(' ');
          i = j;
          continue;
        }
      }
      joined.push_back(text[i]);
    }
    std::string_view body = Trim(joined);
    if (!body.starts_with("#")) {
      return;
    }
    body.remove_prefix(1);
    body = Trim(body);
    if (!body.starts_with("define")) {
      return;
    }
    body.remove_prefix(6);
    body = Trim(body);
    // Macro name.
    size_t i = 0;
    while (i < body.size() &&
           (std::isalnum(static_cast<unsigned char>(body[i])) != 0 || body[i] == '_')) {
      ++i;
    }
    if (i == 0) {
      return;
    }
    MacroDef macro;
    macro.name = Intern(body.substr(0, i));
    macro.line = tok.line;
    body.remove_prefix(i);
    if (!body.empty() && body.front() == '(') {
      const size_t close = body.find(')');
      if (close != std::string_view::npos) {
        for (std::string_view param : Split(body.substr(1, close - 1), ',')) {
          param = Trim(param);
          if (!param.empty()) {
            macro.params.push_back(Intern(param));
          }
        }
        body.remove_prefix(close + 1);
      }
    }
    macro.body = std::string(Trim(body));
    unit_.macros.push_back(std::move(macro));
  }

  void ParseStructDef() {
    StructDef def;
    def.line = Line();
    Next();  // struct / union
    SkipDeclNoise();  // `struct __attribute__((aligned(8))) tag { ... }`
    def.name = Intern(Next().text);
    if (!Eat("{")) {
      SyncToStatementEnd();
      return;
    }
    while (!cur_.AtEnd() && !Peek().Is("}")) {
      ParseStructField(def);
    }
    Eat("}");
    Eat(";");
    unit_.structs.push_back(std::move(def));
  }

  void ParseStructField(StructDef& def) {
    // Gather tokens until ';', tracking nesting; derive name and type.
    std::vector<Token> field_tokens;
    int depth = 0;
    while (!cur_.AtEnd()) {
      if (depth == 0 && SkipDeclNoise()) {
        continue;  // `__attribute__((packed))` etc. never joins the field
      }
      const Token& t = Peek();
      if (depth == 0 && (t.Is(";") || t.Is("}"))) {
        break;
      }
      if (t.Is("{") || t.Is("(") || t.Is("[")) {
        ++depth;
      } else if (t.Is("}") || t.Is(")") || t.Is("]")) {
        --depth;
      }
      field_tokens.push_back(Next());
    }
    Eat(";");
    if (field_tokens.empty()) {
      if (Peek().Is("}")) {
        return;
      }
      Next();  // safety: never loop without progress
      return;
    }

    // Function-pointer field: type (*name)(args)
    for (size_t i = 0; i + 2 < field_tokens.size(); ++i) {
      if (field_tokens[i].Is("(") && field_tokens[i + 1].Is("*") &&
          field_tokens[i + 2].Is(TokenKind::kIdentifier)) {
        def.fields.push_back(StructField{Intern("fnptr"), Intern(field_tokens[i + 2].text)});
        return;
      }
    }

    // Plain field: name is the last identifier before any '[' / ':'.
    size_t name_index = field_tokens.size();
    for (size_t i = field_tokens.size(); i-- > 0;) {
      if (field_tokens[i].Is(TokenKind::kIdentifier)) {
        name_index = i;
        break;
      }
      if (field_tokens[i].Is("[") || field_tokens[i].Is("]") || field_tokens[i].Is(":") ||
          field_tokens[i].Is(TokenKind::kNumber)) {
        continue;
      }
      break;
    }
    if (name_index == field_tokens.size()) {
      return;
    }
    std::string type;
    for (size_t i = 0; i < name_index; ++i) {
      if (!type.empty()) {
        type.push_back(' ');
      }
      type.append(field_tokens[i].text);
    }
    def.fields.push_back(StructField{Intern(type), Intern(field_tokens[name_index].text)});
  }

  // Parses either a function definition or a global variable declaration.
  void ParseDeclarationOrFunction() {
    const size_t start_pos = cur_.position();
    const uint32_t line = Line();
    bool is_static = false;

    // Type prefix: keywords, struct/union/enum tag, identifiers, '*'.
    std::string type_text;
    std::string name;
    while (!cur_.AtEnd()) {
      if (SkipDeclNoise()) {
        continue;
      }
      const Token& t = Peek();
      if (t.Is("static")) {
        is_static = true;
        Next();
        continue;
      }
      if (t.Is(TokenKind::kKeyword) && IsTypeKeyword(t.text)) {
        const std::string_view keyword = t.text;
        if (!type_text.empty()) {
          type_text.push_back(' ');
        }
        type_text.append(keyword);
        Next();
        if (IsParenTypeKeyword(keyword) && Peek().Is("(")) {
          SkipBalanced();  // typeof(...) operand: opaque to the checkers
        }
        continue;
      }
      if (t.Is("*")) {
        type_text.append("*");
        Next();
        continue;
      }
      if (t.Is(TokenKind::kIdentifier)) {
        // Lookahead decides whether this identifier is part of the type or
        // is the declarator name.
        const Token& after = Peek(1);
        if (after.Is(TokenKind::kIdentifier) || after.Is("*")) {
          if (!type_text.empty()) {
            type_text.push_back(' ');
          }
          type_text.append(t.text);
          Next();
          continue;
        }
        name = std::string(t.text);
        Next();
        break;
      }
      break;
    }

    if (name.empty()) {
      // Could not find a declarator; resynchronise.
      if (cur_.position() == start_pos) {
        Next();
      }
      SyncToStatementEnd();
      return;
    }

    if (Peek().Is("(")) {
      ParseFunctionRest(std::move(type_text), std::move(name), line, is_static);
      return;
    }
    ParseGlobalRest(std::move(type_text), std::move(name), line);
  }

  void ParseFunctionRest(std::string return_type, std::string name, uint32_t line,
                         bool is_static) {
    FunctionDef fn;
    fn.return_type = Intern(return_type);
    fn.name = Intern(name);
    fn.line = line;
    fn.is_static = is_static;

    // Parameters.
    Eat("(");
    std::vector<Token> param_tokens;
    int depth = 1;
    while (!cur_.AtEnd() && depth > 0) {
      const Token& t = Peek();
      if (t.Is("(")) {
        ++depth;
      } else if (t.Is(")")) {
        --depth;
        if (depth == 0) {
          Next();
          break;
        }
      }
      param_tokens.push_back(Next());
    }
    fn.params = SplitParams(param_tokens);

    // Attribute soup between the parameter list and the body:
    // `int foo(void) __attribute__((section(".init"))) { ... }`.
    SkipDeclNoise();

    if (Peek().Is("{")) {
      // Function-granular error recovery (DESIGN.md §5.15): remember where
      // this body's matching top-level '}' sits, parse tolerantly, and if
      // parsing either derailed (stopped anywhere but just past that brace)
      // or burned through the per-function error budget, quarantine only
      // this function — resync to the close brace and keep going with the
      // rest of the file, exactly as if the function had been deleted.
      const size_t open_pos = cur_.position();
      const size_t close_pos = FindMatchingBrace(open_pos);
      depth_ = 0;
      recovery_events_ = 0;
      fn.body = ParseCompound();
      const bool derailed = cur_.position() != close_pos + 1 && close_pos < tokens_.size();
      const bool exhausted = recovery_events_ > kFunctionErrorBudget;
      if (derailed || exhausted) {
        if (close_pos < tokens_.size()) {
          cur_.set_position(close_pos + 1);
        }
        DegradedFunction bad;
        bad.name = name;
        bad.line = line;
        bad.what = exhausted
                       ? StrFormat("%zu unparseable statements in body", recovery_events_)
                       : "parse derailed inside body";
        unit_.degraded.push_back(std::move(bad));
        return;
      }
      unit_.functions.push_back(std::move(fn));
      return;
    }
    // Forward declaration (or attribute soup): skip to ';'.
    SyncToStatementEnd();
  }

  // A handful of recovery events inside one body is routine tolerant
  // parsing (skipped macro statement, odd initializer); a body that keeps
  // tripping recovery is noise the checkers would hallucinate over, so it
  // gets quarantined instead. The budget sits well above what clean kernel
  // code produces and well below what genuinely unparseable soup produces.
  static constexpr size_t kFunctionErrorBudget = 6;

  static std::vector<Param> SplitParams(const std::vector<Token>& tokens) {
    std::vector<Param> params;
    std::vector<const Token*> current;
    int depth = 0;
    auto flush = [&]() {
      if (current.empty()) {
        return;
      }
      std::string type;
      std::string name;
      // Name = last identifier; type = everything else.
      size_t name_index = current.size();
      for (size_t i = current.size(); i-- > 0;) {
        if (current[i]->Is(TokenKind::kIdentifier)) {
          name_index = i;
          break;
        }
      }
      for (size_t i = 0; i < current.size(); ++i) {
        if (i == name_index) {
          continue;
        }
        if (!type.empty()) {
          type.push_back(' ');
        }
        type.append(current[i]->text);
      }
      if (name_index < current.size()) {
        name = std::string(current[name_index]->text);
      }
      // "void" alone is not a parameter.
      if (!(name.empty() && type == "void") && !(type.empty() && name == "void")) {
        params.push_back(Param{Intern(type), Intern(name)});
      }
      current.clear();
    };
    for (const Token& t : tokens) {
      if (t.Is("(") || t.Is("[")) {
        ++depth;
      } else if (t.Is(")") || t.Is("]")) {
        --depth;
      } else if (t.Is(",") && depth == 0) {
        flush();
        continue;
      }
      current.push_back(&t);
    }
    flush();
    return params;
  }

  void ParseGlobalRest(std::string type, std::string name, uint32_t line) {
    GlobalVar var;
    var.type = Intern(type);
    var.name = Intern(name);
    var.line = line;

    // Optional array suffix.
    while (Peek().Is("[")) {
      SkipBalanced();
    }

    if (Eat("=")) {
      if (Peek().Is("{")) {
        ParseDesignatedInits(var);
      } else {
        // Scalar initializer: skip its tokens.
        while (!cur_.AtEnd() && !Peek().Is(";") && !Peek().Is(",")) {
          if (Peek().Is("(") || Peek().Is("{")) {
            SkipBalanced();
          } else {
            Next();
          }
        }
      }
    }
    SyncToStatementEnd();
    unit_.globals.push_back(std::move(var));
  }

  void ParseDesignatedInits(GlobalVar& var) {
    Eat("{");
    int depth = 1;
    while (!cur_.AtEnd() && depth > 0) {
      const Token& t = Peek();
      if (t.Is("{")) {
        ++depth;
        Next();
        continue;
      }
      if (t.Is("}")) {
        --depth;
        Next();
        continue;
      }
      if (depth == 1 && t.Is(".") && Peek(1).Is(TokenKind::kIdentifier) && Peek(2).Is("=")) {
        DesignatedInit init;
        Next();  // .
        init.field = Intern(Next().text);
        Next();  // =
        // Value: first identifier/literal token of the initializer.
        if (Peek().Is(TokenKind::kIdentifier) || Peek().Is(TokenKind::kNumber) ||
            Peek().Is(TokenKind::kString)) {
          init.value = Intern(Peek().text);
        }
        var.inits.push_back(init);
        continue;
      }
      Next();
    }
  }

  // ------------------------------------------------------------ statements

  // Node-budget governor: every statement and expression allocation passes
  // through here, so a pathological input trips the cap long before memory
  // becomes a problem.
  void BumpNodeCount() {
    if (options_.max_nodes > 0 && ++nodes_ > options_.max_nodes) {
      throw ResourceLimitError(StrFormat("AST node count exceeds cap %zu", options_.max_nodes));
    }
  }

  StmtPtr MakeStmt(Stmt::Kind kind, uint32_t line) {
    BumpNodeCount();
    Stmt* s = arena_->New<Stmt>();
    s->kind = kind;
    s->line = line;
    return s;
  }

  StmtPtr ParseCompound() {
    StmtPtr s = MakeStmt(Stmt::Kind::kCompound, Line());
    if (!Eat("{")) {
      s->kind = Stmt::Kind::kError;
      SyncToStatementEnd();
      return s;
    }
    while (!cur_.AtEnd() && !Peek().Is("}")) {
      s->stmts.push_back(ParseStatement(), *arena_);
    }
    Eat("}");
    return s;
  }

  StmtPtr ParseStatement() {
    CheckDeadline("parser");
    if (++depth_ > options_.max_depth) {
      --depth_;
      if (options_.depth_fatal) {
        throw ResourceLimitError(StrFormat("AST depth exceeds cap %d", options_.max_depth));
      }
      StmtPtr s = MakeStmt(Stmt::Kind::kError, Line());
      SyncToStatementEnd();
      return s;
    }
    StmtPtr s = ParseStatementInner();
    --depth_;
    return s;
  }

  StmtPtr ParseStatementInner() {
    const Token& t = Peek();
    const uint32_t line = t.line;

    if (t.Is(TokenKind::kPreproc)) {
      Next();
      return MakeStmt(Stmt::Kind::kEmpty, line);
    }
    if (t.Is(";")) {
      Next();
      return MakeStmt(Stmt::Kind::kEmpty, line);
    }
    if (t.Is("{")) {
      return ParseCompound();
    }
    if (t.Is("if")) {
      return ParseIf();
    }
    if (t.Is("while")) {
      Next();
      StmtPtr s = MakeStmt(Stmt::Kind::kWhile, line);
      s->expr = ParseParenExpr();
      s->body = ParseStatement();
      return s;
    }
    if (t.Is("do")) {
      Next();
      StmtPtr s = MakeStmt(Stmt::Kind::kDoWhile, line);
      s->body = ParseStatement();
      if (Eat("while")) {
        s->expr = ParseParenExpr();
      }
      Eat(";");
      return s;
    }
    if (t.Is("for")) {
      return ParseFor();
    }
    if (t.Is("switch")) {
      Next();
      StmtPtr s = MakeStmt(Stmt::Kind::kSwitch, line);
      s->expr = ParseParenExpr();
      s->body = ParseStatement();
      return s;
    }
    if (t.Is("case")) {
      Next();
      StmtPtr s = MakeStmt(Stmt::Kind::kCase, line);
      s->expr = ParseAssignment();
      Eat(":");
      return s;
    }
    if (t.Is("default")) {
      Next();
      Eat(":");
      return MakeStmt(Stmt::Kind::kDefault, line);
    }
    if (t.Is("goto")) {
      Next();
      StmtPtr s = MakeStmt(Stmt::Kind::kGoto, line);
      if (Peek().Is(TokenKind::kIdentifier)) {
        s->name = Intern(Next().text);
      }
      Eat(";");
      return s;
    }
    if (t.Is("return")) {
      Next();
      StmtPtr s = MakeStmt(Stmt::Kind::kReturn, line);
      if (!Peek().Is(";")) {
        s->expr = ParseAssignment();
      }
      Eat(";");
      return s;
    }
    if (t.Is("break")) {
      Next();
      Eat(";");
      return MakeStmt(Stmt::Kind::kBreak, line);
    }
    if (t.Is("continue")) {
      Next();
      Eat(";");
      return MakeStmt(Stmt::Kind::kContinue, line);
    }

    // Inline assembly: `asm [volatile|inline|goto] ( output : input :
    // clobbers )` — the register soup is opaque to the checkers, so the
    // whole block collapses to an empty statement (code around it still
    // parses; see the SNIPPETS.md refcount.h idiom).
    if (t.Is("asm") || t.Is("__asm__") || t.IsIdent("__asm")) {
      Next();
      while (Peek().Is("volatile") || Peek().IsIdent("__volatile__") || Peek().Is("inline") ||
             Peek().IsIdent("__inline__") || Peek().Is("goto")) {
        Next();
      }
      if (Peek().Is("(")) {
        SkipBalanced();
      }
      Eat(";");
      return MakeStmt(Stmt::Kind::kEmpty, line);
    }

    // Label: identifier ':' (not a ternary — at statement start this is safe).
    if (t.Is(TokenKind::kIdentifier) && Peek(1).Is(":")) {
      StmtPtr s = MakeStmt(Stmt::Kind::kLabel, line);
      s->name = Intern(Next().text);
      Eat(":");
      return s;
    }

    // Declaration heuristics.
    if (LooksLikeDeclaration()) {
      return ParseDeclaration();
    }

    // Macro loop: `for_each_xxx(args) body` — an identifier containing
    // "for_each" invoked at statement level.
    if (t.Is(TokenKind::kIdentifier) && t.text.find("for_each") != std::string_view::npos &&
        Peek(1).Is("(")) {
      StmtPtr s = MakeStmt(Stmt::Kind::kMacroLoop, line);
      s->expr = ParseAssignment();  // parses the call expression
      if (Peek().Is(";")) {
        Next();  // degenerate: macro used without a body
        s->body = MakeStmt(Stmt::Kind::kEmpty, line);
      } else {
        s->body = ParseStatement();
      }
      return s;
    }

    // Expression statement.
    StmtPtr s = MakeStmt(Stmt::Kind::kExpr, line);
    s->expr = ParseCommaExpr();
    if (s->expr == nullptr || s->expr->kind == Expr::Kind::kError) {
      s->kind = Stmt::Kind::kError;
      SyncToStatementEnd();
      return s;
    }
    // A call statement followed by '{' is also a macro loop (covers
    // list_for_each_entry-style names without "for_each" prefix variants).
    if (s->expr->IsCall() && Peek().Is("{")) {
      s->kind = Stmt::Kind::kMacroLoop;
      s->body = ParseStatement();
      return s;
    }
    if (!Eat(";")) {
      SyncToStatementEnd();
    }
    return s;
  }

  StmtPtr ParseIf() {
    const uint32_t line = Line();
    Next();  // if
    StmtPtr s = MakeStmt(Stmt::Kind::kIf, line);
    s->expr = ParseParenExpr();
    s->body = ParseStatement();
    if (Eat("else")) {
      s->else_body = ParseStatement();
    }
    return s;
  }

  StmtPtr ParseFor() {
    const uint32_t line = Line();
    Next();  // for
    StmtPtr s = MakeStmt(Stmt::Kind::kFor, line);
    if (!Eat("(")) {
      s->kind = Stmt::Kind::kError;
      SyncToStatementEnd();
      return s;
    }
    if (!Peek().Is(";")) {
      // The init clause may be a declaration (`int i = 0`): skip type tokens.
      while (Peek().Is(TokenKind::kKeyword) && IsTypeKeyword(Peek().text)) {
        Next();
      }
      s->init = ParseCommaExpr();
    }
    Eat(";");
    if (!Peek().Is(";")) {
      s->expr = ParseCommaExpr();
    }
    Eat(";");
    if (!Peek().Is(")")) {
      s->incr = ParseCommaExpr();
    }
    Eat(")");
    s->body = ParseStatement();
    return s;
  }

  bool LooksLikeDeclaration() const {
    const Token& t = Peek();
    if (t.Is(TokenKind::kKeyword) && IsTypeKeyword(t.text)) {
      return true;
    }
    if (!t.Is(TokenKind::kIdentifier)) {
      return false;
    }
    // ident ident  |  ident '*' ident (then '=' ';' ',' '[' or ')')
    const Token& a = Peek(1);
    if (a.Is(TokenKind::kIdentifier)) {
      const Token& b = Peek(2);
      return b.Is("=") || b.Is(";") || b.Is(",") || b.Is("[");
    }
    if (a.Is("*") && Peek(2).Is(TokenKind::kIdentifier)) {
      const Token& b = Peek(3);
      if (b.Is("=") || b.Is(";") || b.Is(",") || b.Is("[")) {
        // `a * b = c;` would be nonsense as an expression; treat as decl.
        return true;
      }
    }
    return LooksLikeTypedefName(t.text) && (a.Is("*") || a.Is(TokenKind::kIdentifier));
  }

  StmtPtr ParseDeclaration() {
    const uint32_t line = Line();
    std::string type;
    // Type tokens: keywords, identifiers (while followed by more type-ish
    // tokens), '*'.
    while (!cur_.AtEnd()) {
      if (SkipDeclNoise()) {
        continue;
      }
      const Token& t = Peek();
      if (t.Is(TokenKind::kKeyword) && IsTypeKeyword(t.text)) {
        const std::string_view keyword = t.text;
        if (!type.empty()) {
          type.push_back(' ');
        }
        type.append(keyword);
        Next();
        if (IsParenTypeKeyword(keyword) && Peek().Is("(")) {
          SkipBalanced();  // typeof(...) operand: opaque to the checkers
        }
        continue;
      }
      if (t.Is("*")) {
        type.append("*");
        Next();
        continue;
      }
      if (t.Is(TokenKind::kIdentifier)) {
        const Token& after = Peek(1);
        if (after.Is(TokenKind::kIdentifier) || after.Is("*")) {
          if (!type.empty()) {
            type.push_back(' ');
          }
          type.append(t.text);
          Next();
          continue;
        }
        break;  // this identifier is the declarator name
      }
      break;
    }
    const Symbol type_sym = Intern(type);

    // One or more declarators.
    StmtPtr compound = MakeStmt(Stmt::Kind::kCompound, line);
    bool first = true;
    while (!cur_.AtEnd()) {
      // Extra stars bind to the declarator.
      while (Peek().Is("*")) {
        Next();
      }
      if (!Peek().Is(TokenKind::kIdentifier)) {
        break;
      }
      StmtPtr decl = MakeStmt(Stmt::Kind::kDecl, Peek().line);
      decl->type = type_sym;
      decl->name = Intern(Next().text);
      while (Peek().Is("[")) {
        SkipBalanced();
      }
      if (Eat("=")) {
        decl->expr = ParseAssignment();
      }
      compound->stmts.push_back(decl, *arena_);
      first = false;
      if (!Eat(",")) {
        break;
      }
    }
    if (!Eat(";")) {
      SyncToStatementEnd();
    }
    if (compound->stmts.size() == 1) {
      return compound->stmts[0];
    }
    if (compound->stmts.empty()) {
      compound->kind = first ? Stmt::Kind::kError : Stmt::Kind::kEmpty;
    }
    return compound;
  }

  // ----------------------------------------------------------- expressions

  ExprPtr MakeExpr(Expr::Kind kind, uint32_t line) {
    BumpNodeCount();
    Expr* e = arena_->New<Expr>();
    e->kind = kind;
    e->line = line;
    return e;
  }

  ExprPtr MakeError(uint32_t line) {
    ++recovery_events_;
    ExprPtr e = MakeExpr(Expr::Kind::kError, line);
    e->value = Intern(Peek().text);
    return e;
  }

  ExprPtr ParseParenExpr() {
    if (!Eat("(")) {
      return MakeError(Line());
    }
    ExprPtr e = ParseCommaExpr();
    Eat(")");
    return e;
  }

  ExprPtr ParseCommaExpr() {
    ExprPtr e = ParseAssignment();
    while (Peek().Is(",")) {
      const uint32_t line = Next().line;
      ExprPtr comma = MakeExpr(Expr::Kind::kBinary, line);
      static const Symbol kComma = Intern(",");
      comma->value = kComma;
      comma->args.push_back(e, *arena_);
      comma->args.push_back(ParseAssignment(), *arena_);
      e = comma;
    }
    return e;
  }

  ExprPtr ParseAssignment() {
    ExprPtr lhs = ParseTernary();
    const Token& t = Peek();
    static constexpr std::string_view kAssignOps[] = {"=",  "+=", "-=", "*=",  "/=", "%=",
                                                      "&=", "|=", "^=", "<<=", ">>="};
    for (std::string_view op : kAssignOps) {
      if (t.text == op && t.kind == TokenKind::kPunct) {
        const uint32_t line = Next().line;
        ExprPtr e = MakeExpr(Expr::Kind::kAssign, line);
        e->value = Intern(op);
        e->args.push_back(lhs, *arena_);
        e->args.push_back(ParseAssignment(), *arena_);
        return e;
      }
    }
    return lhs;
  }

  ExprPtr ParseTernary() {
    ExprPtr cond = ParseBinary(0);
    if (!Peek().Is("?")) {
      return cond;
    }
    const uint32_t line = Next().line;
    ExprPtr e = MakeExpr(Expr::Kind::kTernary, line);
    e->args.push_back(cond, *arena_);
    e->args.push_back(ParseCommaExpr(), *arena_);
    Eat(":");
    e->args.push_back(ParseAssignment(), *arena_);
    return e;
  }

  static int BinaryPrecedence(std::string_view op) {
    // Probed once per token during expression parsing: dispatch on
    // (length, first char) rather than a comparison chain.
    if (op.size() == 1) {
      switch (op[0]) {
        case '*': case '/': case '%': return 10;
        case '+': case '-': return 9;
        case '<': case '>': return 7;
        case '&': return 5;
        case '^': return 4;
        case '|': return 3;
        default: return -1;
      }
    }
    if (op.size() == 2) {
      switch (op[0]) {
        case '<': return op[1] == '<' ? 8 : op[1] == '=' ? 7 : -1;
        case '>': return op[1] == '>' ? 8 : op[1] == '=' ? 7 : -1;
        case '=': return op[1] == '=' ? 6 : -1;
        case '!': return op[1] == '=' ? 6 : -1;
        case '&': return op[1] == '&' ? 2 : -1;
        case '|': return op[1] == '|' ? 1 : -1;
        default: return -1;
      }
    }
    return -1;
  }

  ExprPtr ParseBinary(int min_prec) {
    ExprPtr lhs = ParseUnary();
    while (true) {
      const Token& t = Peek();
      if (!t.Is(TokenKind::kPunct)) {
        return lhs;
      }
      const int prec = BinaryPrecedence(t.text);
      if (prec < 0 || prec < min_prec) {
        return lhs;
      }
      const Symbol op = Intern(t.text);
      const uint32_t line = Next().line;
      ExprPtr rhs = ParseBinary(prec + 1);
      ExprPtr e = MakeExpr(Expr::Kind::kBinary, line);
      e->value = op;
      e->args.push_back(lhs, *arena_);
      e->args.push_back(rhs, *arena_);
      lhs = e;
    }
  }

  ExprPtr ParseUnary() {
    const Token& t = Peek();
    if (t.Is(TokenKind::kPunct)) {
      // * & ! ~ - + ++ --
      const std::string_view s = t.text;
      const bool is_unary =
          (s.size() == 1 && (s[0] == '*' || s[0] == '&' || s[0] == '!' || s[0] == '~' ||
                             s[0] == '-' || s[0] == '+')) ||
          (s.size() == 2 && s[0] == s[1] && (s[0] == '+' || s[0] == '-'));
      if (is_unary) {
        const Symbol op = Intern(s);
        const uint32_t line = Next().line;
        ExprPtr e = MakeExpr(Expr::Kind::kUnary, line);
        e->value = op;
        e->args.push_back(ParseUnary(), *arena_);
        return e;
      }
    }
    if (t.Is("sizeof")) {
      const uint32_t line = Next().line;
      ExprPtr e = MakeExpr(Expr::Kind::kUnary, line);
      static const Symbol kSizeof = Intern("sizeof");
      e->value = kSizeof;
      if (Peek().Is("(")) {
        SkipBalanced();
        e->args.push_back(MakeExpr(Expr::Kind::kLiteral, line), *arena_);
      } else {
        e->args.push_back(ParseUnary(), *arena_);
      }
      return e;
    }
    return ParsePostfix();
  }

  // Decides whether a parenthesised token run is a cast: contents must be
  // only type-ish tokens and the next token must start an expression.
  bool LooksLikeCast() const {
    if (!Peek().Is("(")) {
      return false;
    }
    size_t i = 1;
    bool saw_type_word = false;
    while (true) {
      const Token& t = Peek(i);
      if (t.Is(")")) {
        break;
      }
      if (t.Is(TokenKind::kKeyword) && IsTypeKeyword(t.text)) {
        saw_type_word = true;
      } else if (t.Is("*")) {
        // fine
      } else if (t.Is(TokenKind::kIdentifier)) {
        if (!LooksLikeTypedefName(t.text) && !Peek(i + 1).Is("*") && !Peek(i + 1).Is(")")) {
          return false;
        }
        // An identifier is only type-ish when followed by '*' or ')'
        // *and* a type keyword or typedef-ish spelling is plausible.
        if (!LooksLikeTypedefName(t.text) && !saw_type_word && !Peek(i + 1).Is("*")) {
          return false;
        }
        saw_type_word = saw_type_word || LooksLikeTypedefName(t.text) || Peek(i + 1).Is("*");
      } else {
        return false;
      }
      ++i;
      if (i > 16) {
        return false;
      }
    }
    if (!saw_type_word) {
      return false;
    }
    // Next token must start an expression.
    const Token& after = Peek(i + 1);
    return after.Is(TokenKind::kIdentifier) || after.Is(TokenKind::kNumber) ||
           after.Is(TokenKind::kString) || after.Is("(") || after.Is("*") || after.Is("&");
  }

  ExprPtr ParsePostfix() {
    ExprPtr e = ParsePrimary();
    while (true) {
      const Token& t = Peek();
      if (t.Is("(")) {
        const uint32_t line = Next().line;
        ExprPtr call = MakeExpr(Expr::Kind::kCall, line);
        call->args.push_back(e, *arena_);
        while (!cur_.AtEnd() && !Peek().Is(")")) {
          call->args.push_back(ParseAssignment(), *arena_);
          if (!Eat(",")) {
            break;
          }
        }
        Eat(")");
        e = call;
        continue;
      }
      if (t.Is("[")) {
        const uint32_t line = Next().line;
        ExprPtr index = MakeExpr(Expr::Kind::kIndex, line);
        index->args.push_back(e, *arena_);
        index->args.push_back(ParseCommaExpr(), *arena_);
        Eat("]");
        e = index;
        continue;
      }
      if (t.Is(".") || t.Is("->")) {
        const bool arrow = t.Is("->");
        const uint32_t line = Next().line;
        ExprPtr member = MakeExpr(Expr::Kind::kMember, line);
        member->arrow = arrow;
        member->args.push_back(e, *arena_);
        if (Peek().Is(TokenKind::kIdentifier)) {
          member->value = Intern(Next().text);
        }
        e = member;
        continue;
      }
      if (t.Is("++") || t.Is("--")) {
        const uint32_t line = Line();
        ExprPtr post = MakeExpr(Expr::Kind::kUnary, line);
        post->value = Intern(Next().text);
        post->args.push_back(e, *arena_);
        e = post;
        continue;
      }
      return e;
    }
  }

  ExprPtr ParsePrimary() {
    const Token& t = Peek();
    const uint32_t line = t.line;

    if (t.Is(TokenKind::kIdentifier)) {
      return MakeIdent(*arena_, Next().text, line);
    }
    if (t.Is(TokenKind::kNumber) || t.Is(TokenKind::kString) || t.Is(TokenKind::kChar)) {
      ExprPtr e = MakeExpr(Expr::Kind::kLiteral, line);
      e->value = Intern(Next().text);
      return e;
    }
    if (t.Is("(") && Peek(1).Is("{")) {
      // GNU statement expression: `({ stmt; ...; last_expr; })`. The
      // statements parse normally, then every expression they carry is
      // flattened into one comma chain so calls inside stay visible to the
      // checkers (ForEachExpr reaches them through the chain); the internal
      // control-flow shape is deliberately dropped — kernel code only grows
      // these inside macro bodies, which the parser never expands anyway.
      Next();  // (
      StmtPtr body = ParseCompound();
      Eat(")");
      std::vector<ExprPtr> exprs;
      ForEachStmt(*body, [&exprs](const Stmt& s) {
        for (ExprPtr e : {s.expr, s.init, s.incr}) {
          if (e != nullptr) {
            exprs.push_back(e);
          }
        }
      });
      if (exprs.empty()) {
        return MakeExpr(Expr::Kind::kLiteral, line);
      }
      ExprPtr chain = exprs[0];
      static const Symbol kComma = Intern(",");
      for (size_t k = 1; k < exprs.size(); ++k) {
        ExprPtr comma = MakeExpr(Expr::Kind::kBinary, exprs[k]->line);
        comma->value = kComma;
        comma->args.push_back(chain, *arena_);
        comma->args.push_back(exprs[k], *arena_);
        chain = comma;
      }
      return chain;
    }
    if (t.Is("(")) {
      if (LooksLikeCast()) {
        Next();  // (
        std::string type;
        while (!cur_.AtEnd() && !Peek().Is(")")) {
          if (!type.empty() && !Peek().Is("*")) {
            type.push_back(' ');
          }
          type.append(Next().text);
        }
        Eat(")");
        ExprPtr e = MakeExpr(Expr::Kind::kCast, line);
        e->value = Intern(type);
        e->args.push_back(ParseUnary(), *arena_);
        return e;
      }
      Next();
      ExprPtr inner = ParseCommaExpr();
      Eat(")");
      return inner;
    }
    if (t.Is("{")) {
      // Compound literal-ish initializer; capture elements loosely.
      Next();
      ExprPtr e = MakeExpr(Expr::Kind::kInitList, line);
      while (!cur_.AtEnd() && !Peek().Is("}")) {
        if (Peek().Is(".")) {
          Next();  // designator
          continue;
        }
        if (Peek().Is("=")) {
          Next();
          continue;
        }
        e->args.push_back(ParseAssignment(), *arena_);
        if (!Eat(",")) {
          break;
        }
      }
      Eat("}");
      return e;
    }
    // Unparseable: consume one token so the caller makes progress.
    ExprPtr e = MakeError(line);
    Next();
    return e;
  }

  // Declared before tokens_: Tokenize writes normalized spellings of
  // spliced identifiers here, and members initialize in declaration order.
  SpliceStorage splices_;
  std::vector<Token> tokens_;
  TokenCursor cur_;
  ParseOptions options_;
  TranslationUnit unit_;
  std::shared_ptr<Arena> arena_;
  int depth_ = 0;
  size_t nodes_ = 0;
  // Error-recovery actions (MakeError / SyncToStatementEnd) observed while
  // parsing the current function body; drives function quarantine.
  size_t recovery_events_ = 0;
};

}  // namespace

TranslationUnit ParseFile(const SourceFile& file, const ParseOptions& options) {
  MaybeFault("parser.parse", file.path());
  Parser parser(file, options);
  return parser.Parse();
}

ParsedExpr ParseExpression(std::string_view text) {
  SourceFile file("<expr>", std::string(text));
  Parser parser(file, ParseOptions{});
  ExprPtr root = parser.ParseFullExpr();
  return ParsedExpr(parser.TakeArena(), root);
}

TranslationUnit ParseSnippet(std::string_view body_text) {
  std::string wrapped = "void snippet(void)\n{\n";
  wrapped.append(body_text);
  wrapped.append("\n}\n");
  SourceFile file("<snippet>", std::move(wrapped));
  return ParseFile(file);
}

}  // namespace refscan
