#include "src/ast/ast.h"

namespace refscan {

std::string Expr::CalleeName() const {
  if (kind != Kind::kCall || args.empty() || args[0] == nullptr) {
    return {};
  }
  if (args[0]->kind == Kind::kIdent) {
    return args[0]->value;
  }
  return {};
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kIdent:
    case Kind::kLiteral:
    case Kind::kError:
      return value;
    case Kind::kCall: {
      std::string out = args.empty() || args[0] == nullptr ? "?" : args[0]->ToString();
      out.push_back('(');
      for (size_t i = 1; i < args.size(); ++i) {
        if (i > 1) {
          out.append(", ");
        }
        out.append(args[i] ? args[i]->ToString() : "?");
      }
      out.push_back(')');
      return out;
    }
    case Kind::kMember: {
      std::string out = args.empty() || args[0] == nullptr ? "?" : args[0]->ToString();
      out.append(arrow ? "->" : ".");
      out.append(value);
      return out;
    }
    case Kind::kIndex: {
      std::string out = args.size() > 0 && args[0] ? args[0]->ToString() : "?";
      out.push_back('[');
      out.append(args.size() > 1 && args[1] ? args[1]->ToString() : "?");
      out.push_back(']');
      return out;
    }
    case Kind::kUnary:
      return value + (args.empty() || args[0] == nullptr ? "?" : args[0]->ToString());
    case Kind::kBinary:
    case Kind::kAssign: {
      const std::string lhs = args.size() > 0 && args[0] ? args[0]->ToString() : "?";
      const std::string rhs = args.size() > 1 && args[1] ? args[1]->ToString() : "?";
      return lhs + " " + value + " " + rhs;
    }
    case Kind::kTernary: {
      const std::string c = args.size() > 0 && args[0] ? args[0]->ToString() : "?";
      const std::string t = args.size() > 1 && args[1] ? args[1]->ToString() : "?";
      const std::string e = args.size() > 2 && args[2] ? args[2]->ToString() : "?";
      return c + " ? " + t + " : " + e;
    }
    case Kind::kCast:
      return "(" + value + ")" + (args.empty() || args[0] == nullptr ? "?" : args[0]->ToString());
    case Kind::kInitList: {
      std::string out = "{";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) {
          out.append(", ");
        }
        out.append(args[i] ? args[i]->ToString() : "?");
      }
      out.push_back('}');
      return out;
    }
  }
  return "?";
}

ExprPtr MakeIdent(std::string name, uint32_t line) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kIdent;
  e->value = std::move(name);
  e->line = line;
  return e;
}

const FunctionDef* TranslationUnit::FindFunction(std::string_view name) const {
  for (const FunctionDef& fn : functions) {
    if (fn.name == name) {
      return &fn;
    }
  }
  return nullptr;
}

void ForEachExpr(const Expr& expr, const std::function<void(const Expr&)>& fn) {
  fn(expr);
  for (const ExprPtr& child : expr.args) {
    if (child != nullptr) {
      ForEachExpr(*child, fn);
    }
  }
}

void ForEachExpr(const Stmt& stmt, const std::function<void(const Expr&)>& fn) {
  ForEachStmt(stmt, [&fn](const Stmt& s) {
    for (const Expr* e : {s.expr.get(), s.init.get(), s.incr.get()}) {
      if (e != nullptr) {
        ForEachExpr(*e, fn);
      }
    }
  });
}

void ForEachStmt(const Stmt& stmt, const std::function<void(const Stmt&)>& fn) {
  fn(stmt);
  for (const Stmt* child : {stmt.body.get(), stmt.else_body.get()}) {
    if (child != nullptr) {
      ForEachStmt(*child, fn);
    }
  }
  for (const StmtPtr& child : stmt.stmts) {
    if (child != nullptr) {
      ForEachStmt(*child, fn);
    }
  }
}

}  // namespace refscan
