#include "src/ast/ast.h"

namespace refscan {

Symbol Expr::CalleeName() const {
  if (kind != Kind::kCall || args.empty() || args[0] == nullptr) {
    return {};
  }
  if (args[0]->kind == Kind::kIdent) {
    return args[0]->value;
  }
  return {};
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kIdent:
    case Kind::kLiteral:
    case Kind::kError:
      return value.str();
    case Kind::kCall: {
      std::string out = args.empty() || args[0] == nullptr ? "?" : args[0]->ToString();
      out.push_back('(');
      for (size_t i = 1; i < args.size(); ++i) {
        if (i > 1) {
          out.append(", ");
        }
        out.append(args[i] ? args[i]->ToString() : "?");
      }
      out.push_back(')');
      return out;
    }
    case Kind::kMember: {
      std::string out = args.empty() || args[0] == nullptr ? "?" : args[0]->ToString();
      out.append(arrow ? "->" : ".");
      out.append(value.view());
      return out;
    }
    case Kind::kIndex: {
      std::string out = args.size() > 0 && args[0] ? args[0]->ToString() : "?";
      out.push_back('[');
      out.append(args.size() > 1 && args[1] ? args[1]->ToString() : "?");
      out.push_back(']');
      return out;
    }
    case Kind::kUnary:
      return value.str() + (args.empty() || args[0] == nullptr ? "?" : args[0]->ToString());
    case Kind::kBinary:
    case Kind::kAssign: {
      const std::string lhs = args.size() > 0 && args[0] ? args[0]->ToString() : "?";
      const std::string rhs = args.size() > 1 && args[1] ? args[1]->ToString() : "?";
      return lhs + " " + value.str() + " " + rhs;
    }
    case Kind::kTernary: {
      const std::string c = args.size() > 0 && args[0] ? args[0]->ToString() : "?";
      const std::string t = args.size() > 1 && args[1] ? args[1]->ToString() : "?";
      const std::string e = args.size() > 2 && args[2] ? args[2]->ToString() : "?";
      return c + " ? " + t + " : " + e;
    }
    case Kind::kCast:
      return "(" + value.str() + ")" +
             (args.empty() || args[0] == nullptr ? "?" : args[0]->ToString());
    case Kind::kInitList: {
      std::string out = "{";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) {
          out.append(", ");
        }
        out.append(args[i] ? args[i]->ToString() : "?");
      }
      out.push_back('}');
      return out;
    }
  }
  return "?";
}

ExprPtr MakeIdent(Arena& arena, std::string_view name, uint32_t line) {
  Expr* e = arena.New<Expr>();
  e->kind = Expr::Kind::kIdent;
  e->value = Intern(name);
  e->line = line;
  return e;
}

const FunctionDef* TranslationUnit::FindFunction(std::string_view name) const {
  for (const FunctionDef& fn : functions) {
    if (fn.name == name) {
      return &fn;
    }
  }
  return nullptr;
}

}  // namespace refscan
