// Tolerant recursive-descent parser for the kernel-C subset.
//
// Design goals (mirroring the paper's front end, §6.1):
//   * Never fail on a file: unparseable regions degrade to kError statements
//     with statement-level resynchronisation (skip to ';' or a balancing
//     '}'), so one exotic construct cannot hide the rest of a function.
//   * No preprocessing: macros are captured as definitions (for smartloop
//     discovery) and macro *loops* such as `for_each_child_of_node(...) { }`
//     are recognised syntactically as loop statements.
//   * Keep what the checkers need — calls, assignments, member access,
//     control flow, labels/goto, struct fields, designated initializers of
//     ops structs — and flatten the rest.

#ifndef REFSCAN_AST_PARSER_H_
#define REFSCAN_AST_PARSER_H_

#include "src/ast/ast.h"
#include "src/support/source.h"

namespace refscan {

struct ParseOptions {
  // Statements deeper than this are flattened to kError (stack safety on
  // adversarial inputs). With `depth_fatal` set, exceeding the cap raises
  // ResourceLimitError instead — the engine's sandbox quarantines the file
  // with an explicit kResourceLimit failure rather than silently degrading.
  int max_depth = 200;
  bool depth_fatal = false;
  // AST node budget (statements + expressions); 0 = unlimited. Exceeding it
  // raises ResourceLimitError.
  size_t max_nodes = 0;
};

// Parses one file into a TranslationUnit; always returns a unit (possibly
// with kError nodes) in the default configuration. Three exceptions to
// "never throws", all opted into by the caller and converted to quarantined
// FileFailures by the engine's per-file sandbox: ResourceLimitError from
// the depth/node caps above, DeadlineExceeded from an armed ScopedDeadline
// (polled once per statement), and FaultInjected from the `parser.parse`
// fault-injection site.
TranslationUnit ParseFile(const SourceFile& file, const ParseOptions& options = {});

// A standalone parsed expression plus the Arena that owns its nodes.
// Smart-pointer-ish: keep the holder alive while the expression is in use.
class ParsedExpr {
 public:
  ParsedExpr() = default;
  ParsedExpr(std::shared_ptr<Arena> arena, ExprPtr root)
      : arena_(std::move(arena)), root_(root) {}

  const Expr* get() const { return root_; }
  const Expr& operator*() const { return *root_; }
  const Expr* operator->() const { return root_; }
  explicit operator bool() const { return root_ != nullptr; }
  friend bool operator==(const ParsedExpr& p, std::nullptr_t) { return p.root_ == nullptr; }

 private:
  std::shared_ptr<Arena> arena_;
  ExprPtr root_ = nullptr;
};

// Parses a standalone expression (tests and tools).
ParsedExpr ParseExpression(std::string_view text);

// Parses a standalone function body snippet wrapped as `void f() { ... }`
// and returns the unit (tests and examples).
TranslationUnit ParseSnippet(std::string_view body_text);

}  // namespace refscan

#endif  // REFSCAN_AST_PARSER_H_
