// AST for the kernel-C subset refscan analyses.
//
// The tree is deliberately loose: it keeps exactly the structure the CFG,
// CPG and checkers need (calls, assignments, member access, control flow,
// labels, macro loops, struct/global definitions) and flattens everything
// else into opaque expression text. Nodes carry 1-based source lines; the
// paper's CPG uses those line numbers to order execution events.

#ifndef REFSCAN_AST_AST_H_
#define REFSCAN_AST_AST_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace refscan {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind : uint8_t {
    kIdent,     // value = identifier name
    kLiteral,   // value = literal spelling (number, string, char)
    kCall,      // args[0] = callee, args[1..] = arguments
    kMember,    // args[0] = base, value = field name, arrow = ('->' vs '.')
    kIndex,     // args[0] = base, args[1] = index
    kUnary,     // value = operator ("*", "&", "!", "-", "~", "++", "--")
    kBinary,    // value = operator, args[0] lhs, args[1] rhs
    kAssign,    // value = operator ("=", "+=", ...), args[0] lhs, args[1] rhs
    kTernary,   // args[0] cond, args[1] then, args[2] else
    kCast,      // value = type text, args[0] = operand
    kInitList,  // args = elements; designators recorded in `value` per element? (see GlobalVar)
    kError,     // unparseable fragment; value = raw text (best effort)
  };

  Kind kind = Kind::kError;
  uint32_t line = 0;
  std::string value;
  bool arrow = false;
  std::vector<ExprPtr> args;

  // Convenience accessors -----------------------------------------------

  bool IsCall() const { return kind == Kind::kCall; }

  // For kCall with a plain identifier callee, returns the callee name;
  // otherwise "".
  std::string CalleeName() const;

  // Renders a compact single-line spelling (diagnostics and template text).
  std::string ToString() const;
};

ExprPtr MakeIdent(std::string name, uint32_t line);

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum class Kind : uint8_t {
    kExpr,       // expr
    kDecl,       // type/name, expr = initializer (may be null)
    kCompound,   // stmts
    kIf,         // expr = condition, body = then, else_body = else (may be null)
    kWhile,      // expr = condition, body
    kDoWhile,    // expr = condition, body
    kFor,        // init / expr(condition) / incr, body
    kMacroLoop,  // expr = the macro invocation (kCall), body; e.g. for_each_child_of_node
    kSwitch,     // expr = condition, body (compound containing kCase/kDefault labels)
    kCase,       // expr = case value
    kDefault,
    kLabel,      // name = label
    kGoto,       // name = target label
    kReturn,     // expr = value (may be null)
    kBreak,
    kContinue,
    kEmpty,
    kError,      // skipped text
  };

  Kind kind = Kind::kError;
  uint32_t line = 0;
  ExprPtr expr;
  ExprPtr init;  // kFor
  ExprPtr incr;  // kFor
  StmtPtr body;
  StmtPtr else_body;
  std::vector<StmtPtr> stmts;  // kCompound
  std::string name;            // kDecl variable / kLabel / kGoto
  std::string type;            // kDecl declared type text
};

struct Param {
  std::string type;
  std::string name;
};

struct FunctionDef {
  std::string return_type;
  std::string name;
  std::vector<Param> params;
  StmtPtr body;  // always a kCompound
  uint32_t line = 0;
  bool is_static = false;
};

struct StructField {
  std::string type;  // flattened type text, e.g. "struct kobject" or "refcount_t"
  std::string name;
};

struct StructDef {
  std::string name;
  std::vector<StructField> fields;
  uint32_t line = 0;
};

// A designated initializer entry in a global aggregate, ".probe = foo_probe".
struct DesignatedInit {
  std::string field;
  std::string value;  // identifier text of the initializer
};

struct GlobalVar {
  std::string type;  // e.g. "struct platform_driver"
  std::string name;
  std::vector<DesignatedInit> inits;
  uint32_t line = 0;
};

struct MacroDef {
  std::string name;
  std::vector<std::string> params;  // empty for object-like macros
  std::string body;                 // raw body text, continuations joined
  uint32_t line = 0;
};

struct TranslationUnit {
  std::string path;
  std::vector<MacroDef> macros;
  std::vector<StructDef> structs;
  std::vector<GlobalVar> globals;
  std::vector<FunctionDef> functions;

  const FunctionDef* FindFunction(std::string_view name) const;
};

// Visits every expression in a statement tree (pre-order), including
// conditions, initializers and loop increments.
void ForEachExpr(const Stmt& stmt, const std::function<void(const Expr&)>& fn);
void ForEachExpr(const Expr& expr, const std::function<void(const Expr&)>& fn);

// Visits every statement in the tree (pre-order), including `stmt` itself.
void ForEachStmt(const Stmt& stmt, const std::function<void(const Stmt&)>& fn);

}  // namespace refscan

#endif  // REFSCAN_AST_AST_H_
