// AST for the kernel-C subset refscan analyses.
//
// The tree is deliberately loose: it keeps exactly the structure the CFG,
// CPG and checkers need (calls, assignments, member access, control flow,
// labels, macro loops, struct/global definitions) and flattens everything
// else into opaque expression text. Nodes carry 1-based source lines; the
// paper's CPG uses those line numbers to order execution events.
//
// Memory model (DESIGN.md §5.11): every Expr/Stmt node lives in its
// TranslationUnit's Arena — contiguous bump-allocated pools, freed
// wholesale when the unit dies. ExprPtr/StmtPtr are non-owning raw
// pointers into that arena, child lists are arena-backed spans (ArenaVec),
// and all identifier/text fields are interned Symbols, so node copies and
// comparisons never touch the heap. The unit lifecycle contract: the
// arena (TranslationUnit::arena) must outlive every node pointer taken
// from the unit — Cfg/Cpg/FunctionContext all hold pointers into it, so
// they must not outlive the UnitContext that owns the unit.

#ifndef REFSCAN_AST_AST_H_
#define REFSCAN_AST_AST_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/arena.h"
#include "src/support/interner.h"

namespace refscan {

struct Expr;
using ExprPtr = Expr*;  // non-owning; storage belongs to the unit's Arena

struct Expr {
  enum class Kind : uint8_t {
    kIdent,     // value = identifier name
    kLiteral,   // value = literal spelling (number, string, char)
    kCall,      // args[0] = callee, args[1..] = arguments
    kMember,    // args[0] = base, value = field name, arrow = ('->' vs '.')
    kIndex,     // args[0] = base, args[1] = index
    kUnary,     // value = operator ("*", "&", "!", "-", "~", "++", "--")
    kBinary,    // value = operator, args[0] lhs, args[1] rhs
    kAssign,    // value = operator ("=", "+=", ...), args[0] lhs, args[1] rhs
    kTernary,   // args[0] cond, args[1] then, args[2] else
    kCast,      // value = type text, args[0] = operand
    kInitList,  // args = elements; designators recorded in `value` per element? (see GlobalVar)
    kError,     // unparseable fragment; value = raw text (best effort)
  };

  Kind kind = Kind::kError;
  uint32_t line = 0;
  Symbol value;
  bool arrow = false;
  ArenaVec<ExprPtr> args;

  // Convenience accessors -----------------------------------------------

  bool IsCall() const { return kind == Kind::kCall; }

  // For kCall with a plain identifier callee, returns the callee name
  // Symbol; otherwise the empty Symbol. (Satellite of ISSUE 6: this used to
  // return std::string by value on the checker hot path.)
  Symbol CalleeName() const;

  // Renders a compact single-line spelling (diagnostics and template text).
  std::string ToString() const;
};

ExprPtr MakeIdent(Arena& arena, std::string_view name, uint32_t line);

struct Stmt;
using StmtPtr = Stmt*;  // non-owning; storage belongs to the unit's Arena

struct Stmt {
  enum class Kind : uint8_t {
    kExpr,       // expr
    kDecl,       // type/name, expr = initializer (may be null)
    kCompound,   // stmts
    kIf,         // expr = condition, body = then, else_body = else (may be null)
    kWhile,      // expr = condition, body
    kDoWhile,    // expr = condition, body
    kFor,        // init / expr(condition) / incr, body
    kMacroLoop,  // expr = the macro invocation (kCall), body; e.g. for_each_child_of_node
    kSwitch,     // expr = condition, body (compound containing kCase/kDefault labels)
    kCase,       // expr = case value
    kDefault,
    kLabel,      // name = label
    kGoto,       // name = target label
    kReturn,     // expr = value (may be null)
    kBreak,
    kContinue,
    kEmpty,
    kError,      // skipped text
  };

  Kind kind = Kind::kError;
  uint32_t line = 0;
  ExprPtr expr = nullptr;
  ExprPtr init = nullptr;  // kFor
  ExprPtr incr = nullptr;  // kFor
  StmtPtr body = nullptr;
  StmtPtr else_body = nullptr;
  ArenaVec<StmtPtr> stmts;  // kCompound
  Symbol name;              // kDecl variable / kLabel / kGoto
  Symbol type;              // kDecl declared type text
};

struct Param {
  Symbol type;
  Symbol name;
};

struct FunctionDef {
  Symbol return_type;
  Symbol name;
  std::vector<Param> params;
  StmtPtr body = nullptr;  // always a kCompound
  uint32_t line = 0;
  bool is_static = false;
};

struct StructField {
  Symbol type;  // flattened type text, e.g. "struct kobject" or "refcount_t"
  Symbol name;
};

struct StructDef {
  Symbol name;
  std::vector<StructField> fields;
  uint32_t line = 0;
};

// A designated initializer entry in a global aggregate, ".probe = foo_probe".
struct DesignatedInit {
  Symbol field;
  Symbol value;  // identifier text of the initializer
};

struct GlobalVar {
  Symbol type;  // e.g. "struct platform_driver"
  Symbol name;
  std::vector<DesignatedInit> inits;
  uint32_t line = 0;
};

struct MacroDef {
  Symbol name;
  std::vector<Symbol> params;  // empty for object-like macros
  std::string body;            // raw body text, continuations joined
  uint32_t line = 0;
};

// A function body the parser could not make sense of (DESIGN.md §5.15).
// The parser skips to the function's matching top-level close brace and
// quarantines just this function: it is excluded from `functions` (and so
// from discovery facts and checker reports — exactly as if it were deleted
// from the source), and surfaced in the scan's "degraded functions" section
// instead of dropping the whole file.
struct DegradedFunction {
  std::string name;
  uint32_t line = 0;    // 1-based line of the function definition
  std::string what;     // short reason, e.g. "12 unparseable statements"
};

struct TranslationUnit {
  std::string path;
  // Owns every Expr/Stmt node below. shared_ptr so moved/copied units keep
  // their nodes alive; nodes are immutable after parse, so sharing is safe.
  std::shared_ptr<Arena> arena;
  std::vector<MacroDef> macros;
  std::vector<StructDef> structs;
  std::vector<GlobalVar> globals;
  std::vector<FunctionDef> functions;
  // Function-granular parse casualties, in source order.
  std::vector<DegradedFunction> degraded;

  const FunctionDef* FindFunction(std::string_view name) const;
};

// Visits every expression in a statement tree (pre-order), including
// conditions, initializers and loop increments. Templates rather than
// std::function: these walks run over every AST node of every unit (CPG
// extraction, KB discovery), where the type-erased call per node is
// measurable.
template <typename Fn>
void ForEachExpr(const Expr& expr, const Fn& fn) {
  fn(expr);
  for (const ExprPtr child : expr.args) {
    if (child != nullptr) {
      ForEachExpr(*child, fn);
    }
  }
}

// Visits every statement in the tree (pre-order), including `stmt` itself.
template <typename Fn>
void ForEachStmt(const Stmt& stmt, const Fn& fn) {
  fn(stmt);
  for (const Stmt* child : {stmt.body, stmt.else_body}) {
    if (child != nullptr) {
      ForEachStmt(*child, fn);
    }
  }
  for (const StmtPtr child : stmt.stmts) {
    if (child != nullptr) {
      ForEachStmt(*child, fn);
    }
  }
}

template <typename Fn>
void ForEachExpr(const Stmt& stmt, const Fn& fn) {
  ForEachStmt(stmt, [&fn](const Stmt& s) {
    for (const Expr* e : {s.expr, s.init, s.incr}) {
      if (e != nullptr) {
        ForEachExpr(*e, fn);
      }
    }
  });
}

}  // namespace refscan

#endif  // REFSCAN_AST_AST_H_
