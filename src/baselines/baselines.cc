#include "src/baselines/baselines.h"

#include <deque>
#include <set>
#include <map>

#include "src/ast/parser.h"
#include "src/checkers/engine.h"
#include "src/cpg/cpg.h"

namespace refscan {

namespace {

// Function-level refcounting profile shared by the baselines.
struct FunctionProfile {
  const UnitContext* unit = nullptr;
  const FunctionContext* fc = nullptr;
  // Per-object counts over all events (flow-insensitive, like the simple
  // strategies these baselines model).
  std::map<std::string, int> increments;
  std::map<std::string, int> decrements;
  std::map<std::string, int> escapes;     // escaping assignments per object
  std::map<std::string, uint32_t> first_inc_line;
  std::map<std::string, std::string> inc_api;
};

FunctionProfile ProfileFunction(const UnitContext& uc, const FunctionContext& fc) {
  FunctionProfile profile;
  profile.unit = &uc;
  profile.fc = &fc;
  for (size_t node = 0; node < fc.cpg->size(); ++node) {
    for (const SemEvent& ev : fc.cpg->events(static_cast<int>(node))) {
      if (ev.object.empty()) {
        continue;
      }
      const std::string root = RootSymbol(ev.object).str();
      switch (ev.op) {
        case SemOp::kIncrease:
          profile.increments[root]++;
          if (!profile.first_inc_line.contains(root)) {
            profile.first_inc_line[root] = ev.line;
            profile.inc_api[root] = ev.api != nullptr ? ev.api->name : "";
          }
          break;
        case SemOp::kDecrease:
          profile.decrements[root]++;
          break;
        case SemOp::kAssign:
          if (ev.escapes && !ev.aux.empty()) {
            profile.escapes[RootSymbol(ev.aux).str()]++;
          }
          break;
        default:
          break;
      }
    }
  }
  return profile;
}

BaselineReport MakeReport(const char* checker, const FunctionProfile& profile,
                          const std::string& object) {
  BaselineReport report;
  report.checker = checker;
  report.file = profile.unit->unit.path;
  report.function = profile.fc->fn->name.str();
  report.object = object;
  auto line = profile.first_inc_line.find(object);
  report.line = line != profile.first_inc_line.end() ? line->second : profile.fc->fn->line;
  auto api = profile.inc_api.find(object);
  report.api = api != profile.inc_api.end() ? api->second : "";
  return report;
}

}  // namespace

BaselineResult RunBaselines(const SourceTree& tree, KnowledgeBase kb) {
  // Parse + discover, mirroring the engine's two-round discovery.
  std::vector<TranslationUnit> units;
  units.reserve(tree.size());
  for (const auto& [path, file] : tree.files()) {
    units.push_back(ParseFile(file));
  }
  for (int round = 0; round < 2; ++round) {
    for (const TranslationUnit& unit : units) {
      kb.DiscoverFromUnit(unit);
    }
  }

  std::deque<UnitContext> contexts;
  size_t index = 0;
  for (const auto& [path, file] : tree.files()) {
    contexts.push_back(BuildUnitContext(file, std::move(units[index++]), kb));
  }

  std::deque<FunctionProfile> profiles;
  for (const UnitContext& uc : contexts) {
    for (const FunctionContext& fc : uc.functions) {
      profiles.push_back(ProfileFunction(uc, fc));
    }
  }

  BaselineResult result;

  // ---- Paired consistency (RID-style): inc count > dec count anywhere in
  // the function is an inconsistency.
  for (const FunctionProfile& profile : profiles) {
    for (const auto& [object, incs] : profile.increments) {
      const auto dec = profile.decrements.find(object);
      const int decs = dec != profile.decrements.end() ? dec->second : 0;
      if (incs > decs) {
        result.paired_consistency.push_back(MakeReport("paired-consistency", profile, object));
      }
    }
  }

  // ---- Escape invariant (LinKRID-style): #escapes must equal #increments
  // for every object that participates in refcounting.
  for (const FunctionProfile& profile : profiles) {
    std::set<std::string> objects;
    for (const auto& [object, n] : profile.increments) {
      objects.insert(object);
    }
    for (const auto& [object, n] : profile.escapes) {
      objects.insert(object);
    }
    for (const std::string& object : objects) {
      const auto inc = profile.increments.find(object);
      const auto esc = profile.escapes.find(object);
      const int incs = inc != profile.increments.end() ? inc->second : 0;
      const int escs = esc != profile.escapes.end() ? esc->second : 0;
      // Locally released references are exempt from the invariant.
      const auto dec = profile.decrements.find(object);
      const int decs = dec != profile.decrements.end() ? dec->second : 0;
      if (incs - decs != escs && incs > 0) {
        result.escape_invariant.push_back(MakeReport("escape-invariant", profile, object));
      }
    }
  }

  // ---- Cross-check: per acquiring API, observe the majority call-site
  // behaviour (released in-function or not) and flag minority sites.
  struct SiteInfo {
    const FunctionProfile* profile;
    std::string object;
    bool released;
  };
  std::map<std::string, std::vector<SiteInfo>> sites_by_api;
  for (const FunctionProfile& profile : profiles) {
    for (const auto& [object, api] : profile.inc_api) {
      if (api.empty()) {
        continue;
      }
      const auto dec = profile.decrements.find(object);
      const bool released = dec != profile.decrements.end() && dec->second > 0;
      sites_by_api[api].push_back(SiteInfo{&profile, object, released});
    }
  }
  for (const auto& [api, sites] : sites_by_api) {
    if (sites.size() < 3) {
      continue;  // not enough evidence for a majority vote
    }
    int released = 0;
    for (const SiteInfo& site : sites) {
      released += site.released ? 1 : 0;
    }
    const bool majority_releases = released * 2 > static_cast<int>(sites.size());
    for (const SiteInfo& site : sites) {
      if (majority_releases && !site.released) {
        result.cross_check.push_back(MakeReport("cross-check", *site.profile, site.object));
      }
    }
  }

  return result;
}

}  // namespace refscan
