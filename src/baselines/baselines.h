// Prior-work baseline detectors (paper §8 "Related Work").
//
// Three simplified reimplementations of the strategy families the paper
// compares against, used by the ablation bench to reproduce the paper's
// qualitative claims (e.g. invariant-style checking suffers ~60% false
// positives on kernel-style code because ownership transfers and
// refcounting omissions break the simple rules):
//
//   * PairedConsistency (RID-style): every increment must have a matching
//     decrement somewhere in the same function; flags any function-level
//     imbalance. No transfer-, NULL-branch- or error-path-awareness.
//   * EscapeInvariant (LinKRID-style): the number of escaped references
//     must equal the number of increments in a function; flags violations.
//   * CrossCheck: for each API, observe how the majority of call sites
//     behave (paired vs not) and flag minority sites.

#ifndef REFSCAN_BASELINES_BASELINES_H_
#define REFSCAN_BASELINES_BASELINES_H_

#include <string>
#include <vector>

#include "src/kb/kb.h"
#include "src/support/source.h"

namespace refscan {

struct BaselineReport {
  std::string checker;  // "paired-consistency" | "escape-invariant" | "cross-check"
  std::string file;
  std::string function;
  std::string api;
  std::string object;
  uint32_t line = 0;
};

struct BaselineResult {
  std::vector<BaselineReport> paired_consistency;
  std::vector<BaselineReport> escape_invariant;
  std::vector<BaselineReport> cross_check;
};

// Runs all three baselines over the tree (parsing it independently of the
// anti-pattern engine, with the same KB and discovery).
BaselineResult RunBaselines(const SourceTree& tree, KnowledgeBase kb);

}  // namespace refscan

#endif  // REFSCAN_BASELINES_BASELINES_H_
