
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/checkers/CMakeFiles/refscan_checkers.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/refscan_report.dir/DependInfo.cmake"
  "/root/repo/build/src/cpg/CMakeFiles/refscan_cpg.dir/DependInfo.cmake"
  "/root/repo/build/src/kb/CMakeFiles/refscan_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/refscan_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/refscan_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/lexer/CMakeFiles/refscan_lexer.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/refscan_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
