# Empty dependencies file for suggest_patches.
# This may be replaced when dependencies are built.
