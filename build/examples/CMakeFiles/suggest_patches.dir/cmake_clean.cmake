file(REMOVE_RECURSE
  "CMakeFiles/suggest_patches.dir/suggest_patches.cpp.o"
  "CMakeFiles/suggest_patches.dir/suggest_patches.cpp.o.d"
  "suggest_patches"
  "suggest_patches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suggest_patches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
