# Empty compiler generated dependencies file for mine_history.
# This may be replaced when dependencies are built.
