file(REMOVE_RECURSE
  "CMakeFiles/mine_history.dir/mine_history.cpp.o"
  "CMakeFiles/mine_history.dir/mine_history.cpp.o.d"
  "mine_history"
  "mine_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mine_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
