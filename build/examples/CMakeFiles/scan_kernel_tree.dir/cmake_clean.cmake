file(REMOVE_RECURSE
  "CMakeFiles/scan_kernel_tree.dir/scan_kernel_tree.cpp.o"
  "CMakeFiles/scan_kernel_tree.dir/scan_kernel_tree.cpp.o.d"
  "scan_kernel_tree"
  "scan_kernel_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scan_kernel_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
