# Empty dependencies file for scan_kernel_tree.
# This may be replaced when dependencies are built.
