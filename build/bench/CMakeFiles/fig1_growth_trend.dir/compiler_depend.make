# Empty compiler generated dependencies file for fig1_growth_trend.
# This may be replaced when dependencies are built.
