file(REMOVE_RECURSE
  "CMakeFiles/fig1_growth_trend.dir/fig1_growth_trend.cc.o"
  "CMakeFiles/fig1_growth_trend.dir/fig1_growth_trend.cc.o.d"
  "fig1_growth_trend"
  "fig1_growth_trend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_growth_trend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
