file(REMOVE_RECURSE
  "CMakeFiles/table2_taxonomy.dir/table2_taxonomy.cc.o"
  "CMakeFiles/table2_taxonomy.dir/table2_taxonomy.cc.o.d"
  "table2_taxonomy"
  "table2_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
