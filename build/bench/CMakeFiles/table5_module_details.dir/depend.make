# Empty dependencies file for table5_module_details.
# This may be replaced when dependencies are built.
