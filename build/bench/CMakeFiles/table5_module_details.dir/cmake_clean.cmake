file(REMOVE_RECURSE
  "CMakeFiles/table5_module_details.dir/table5_module_details.cc.o"
  "CMakeFiles/table5_module_details.dir/table5_module_details.cc.o.d"
  "table5_module_details"
  "table5_module_details.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_module_details.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
