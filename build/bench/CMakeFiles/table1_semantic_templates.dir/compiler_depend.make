# Empty compiler generated dependencies file for table1_semantic_templates.
# This may be replaced when dependencies are built.
