file(REMOVE_RECURSE
  "CMakeFiles/fig3_lifetimes.dir/fig3_lifetimes.cc.o"
  "CMakeFiles/fig3_lifetimes.dir/fig3_lifetimes.cc.o.d"
  "fig3_lifetimes"
  "fig3_lifetimes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_lifetimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
