# Empty compiler generated dependencies file for fig3_lifetimes.
# This may be replaced when dependencies are built.
