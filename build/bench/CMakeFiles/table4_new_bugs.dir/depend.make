# Empty dependencies file for table4_new_bugs.
# This may be replaced when dependencies are built.
