file(REMOVE_RECURSE
  "CMakeFiles/table4_new_bugs.dir/table4_new_bugs.cc.o"
  "CMakeFiles/table4_new_bugs.dir/table4_new_bugs.cc.o.d"
  "table4_new_bugs"
  "table4_new_bugs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_new_bugs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
