file(REMOVE_RECURSE
  "CMakeFiles/fig2_distribution.dir/fig2_distribution.cc.o"
  "CMakeFiles/fig2_distribution.dir/fig2_distribution.cc.o.d"
  "fig2_distribution"
  "fig2_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
