file(REMOVE_RECURSE
  "CMakeFiles/table3_similarity.dir/table3_similarity.cc.o"
  "CMakeFiles/table3_similarity.dir/table3_similarity.cc.o.d"
  "table3_similarity"
  "table3_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
