# Empty dependencies file for table3_similarity.
# This may be replaced when dependencies are built.
