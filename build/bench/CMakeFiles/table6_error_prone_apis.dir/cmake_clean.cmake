file(REMOVE_RECURSE
  "CMakeFiles/table6_error_prone_apis.dir/table6_error_prone_apis.cc.o"
  "CMakeFiles/table6_error_prone_apis.dir/table6_error_prone_apis.cc.o.d"
  "table6_error_prone_apis"
  "table6_error_prone_apis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_error_prone_apis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
