# Empty dependencies file for table6_error_prone_apis.
# This may be replaced when dependencies are built.
