file(REMOVE_RECURSE
  "CMakeFiles/refscan_support.dir/fs.cc.o"
  "CMakeFiles/refscan_support.dir/fs.cc.o.d"
  "CMakeFiles/refscan_support.dir/source.cc.o"
  "CMakeFiles/refscan_support.dir/source.cc.o.d"
  "CMakeFiles/refscan_support.dir/strings.cc.o"
  "CMakeFiles/refscan_support.dir/strings.cc.o.d"
  "librefscan_support.a"
  "librefscan_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refscan_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
