file(REMOVE_RECURSE
  "librefscan_support.a"
)
