# Empty dependencies file for refscan_support.
# This may be replaced when dependencies are built.
