# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("report")
subdirs("lexer")
subdirs("ast")
subdirs("cfg")
subdirs("kb")
subdirs("cpg")
subdirs("checkers")
subdirs("corpus")
subdirs("histmine")
subdirs("stats")
subdirs("embed")
subdirs("baselines")
