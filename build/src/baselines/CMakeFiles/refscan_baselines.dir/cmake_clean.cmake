file(REMOVE_RECURSE
  "CMakeFiles/refscan_baselines.dir/baselines.cc.o"
  "CMakeFiles/refscan_baselines.dir/baselines.cc.o.d"
  "librefscan_baselines.a"
  "librefscan_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refscan_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
