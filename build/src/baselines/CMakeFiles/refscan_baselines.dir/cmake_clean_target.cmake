file(REMOVE_RECURSE
  "librefscan_baselines.a"
)
