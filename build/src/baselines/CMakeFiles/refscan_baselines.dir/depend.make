# Empty dependencies file for refscan_baselines.
# This may be replaced when dependencies are built.
