file(REMOVE_RECURSE
  "CMakeFiles/refscan_lexer.dir/lexer.cc.o"
  "CMakeFiles/refscan_lexer.dir/lexer.cc.o.d"
  "librefscan_lexer.a"
  "librefscan_lexer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refscan_lexer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
