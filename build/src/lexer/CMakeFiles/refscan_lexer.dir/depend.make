# Empty dependencies file for refscan_lexer.
# This may be replaced when dependencies are built.
