file(REMOVE_RECURSE
  "librefscan_lexer.a"
)
