# Empty compiler generated dependencies file for refscan_stats.
# This may be replaced when dependencies are built.
