file(REMOVE_RECURSE
  "CMakeFiles/refscan_stats.dir/stats.cc.o"
  "CMakeFiles/refscan_stats.dir/stats.cc.o.d"
  "librefscan_stats.a"
  "librefscan_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refscan_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
