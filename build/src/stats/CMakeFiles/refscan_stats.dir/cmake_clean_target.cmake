file(REMOVE_RECURSE
  "librefscan_stats.a"
)
