file(REMOVE_RECURSE
  "librefscan_checkers.a"
)
