file(REMOVE_RECURSE
  "CMakeFiles/refscan_checkers.dir/checkers.cc.o"
  "CMakeFiles/refscan_checkers.dir/checkers.cc.o.d"
  "CMakeFiles/refscan_checkers.dir/engine.cc.o"
  "CMakeFiles/refscan_checkers.dir/engine.cc.o.d"
  "CMakeFiles/refscan_checkers.dir/fixes.cc.o"
  "CMakeFiles/refscan_checkers.dir/fixes.cc.o.d"
  "CMakeFiles/refscan_checkers.dir/report.cc.o"
  "CMakeFiles/refscan_checkers.dir/report.cc.o.d"
  "CMakeFiles/refscan_checkers.dir/template_matcher.cc.o"
  "CMakeFiles/refscan_checkers.dir/template_matcher.cc.o.d"
  "CMakeFiles/refscan_checkers.dir/templates.cc.o"
  "CMakeFiles/refscan_checkers.dir/templates.cc.o.d"
  "librefscan_checkers.a"
  "librefscan_checkers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refscan_checkers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
