# Empty compiler generated dependencies file for refscan_checkers.
# This may be replaced when dependencies are built.
