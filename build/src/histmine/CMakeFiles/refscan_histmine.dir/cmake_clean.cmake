file(REMOVE_RECURSE
  "CMakeFiles/refscan_histmine.dir/gitlog.cc.o"
  "CMakeFiles/refscan_histmine.dir/gitlog.cc.o.d"
  "CMakeFiles/refscan_histmine.dir/history.cc.o"
  "CMakeFiles/refscan_histmine.dir/history.cc.o.d"
  "CMakeFiles/refscan_histmine.dir/miner.cc.o"
  "CMakeFiles/refscan_histmine.dir/miner.cc.o.d"
  "librefscan_histmine.a"
  "librefscan_histmine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refscan_histmine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
