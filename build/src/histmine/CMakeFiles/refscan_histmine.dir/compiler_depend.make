# Empty compiler generated dependencies file for refscan_histmine.
# This may be replaced when dependencies are built.
