file(REMOVE_RECURSE
  "librefscan_histmine.a"
)
