# Empty dependencies file for refscan_cfg.
# This may be replaced when dependencies are built.
