file(REMOVE_RECURSE
  "librefscan_cfg.a"
)
