file(REMOVE_RECURSE
  "CMakeFiles/refscan_cfg.dir/cfg.cc.o"
  "CMakeFiles/refscan_cfg.dir/cfg.cc.o.d"
  "librefscan_cfg.a"
  "librefscan_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refscan_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
