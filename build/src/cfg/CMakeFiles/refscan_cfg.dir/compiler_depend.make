# Empty compiler generated dependencies file for refscan_cfg.
# This may be replaced when dependencies are built.
