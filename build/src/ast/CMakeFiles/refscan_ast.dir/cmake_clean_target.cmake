file(REMOVE_RECURSE
  "librefscan_ast.a"
)
