# Empty compiler generated dependencies file for refscan_ast.
# This may be replaced when dependencies are built.
