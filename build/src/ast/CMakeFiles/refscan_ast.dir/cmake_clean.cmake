file(REMOVE_RECURSE
  "CMakeFiles/refscan_ast.dir/ast.cc.o"
  "CMakeFiles/refscan_ast.dir/ast.cc.o.d"
  "CMakeFiles/refscan_ast.dir/parser.cc.o"
  "CMakeFiles/refscan_ast.dir/parser.cc.o.d"
  "librefscan_ast.a"
  "librefscan_ast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refscan_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
