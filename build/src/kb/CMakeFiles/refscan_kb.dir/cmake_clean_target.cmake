file(REMOVE_RECURSE
  "librefscan_kb.a"
)
