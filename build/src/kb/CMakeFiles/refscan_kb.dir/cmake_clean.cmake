file(REMOVE_RECURSE
  "CMakeFiles/refscan_kb.dir/deviations.cc.o"
  "CMakeFiles/refscan_kb.dir/deviations.cc.o.d"
  "CMakeFiles/refscan_kb.dir/kb.cc.o"
  "CMakeFiles/refscan_kb.dir/kb.cc.o.d"
  "librefscan_kb.a"
  "librefscan_kb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refscan_kb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
