# Empty compiler generated dependencies file for refscan_kb.
# This may be replaced when dependencies are built.
