file(REMOVE_RECURSE
  "CMakeFiles/refscan_cpg.dir/cpg.cc.o"
  "CMakeFiles/refscan_cpg.dir/cpg.cc.o.d"
  "CMakeFiles/refscan_cpg.dir/dump.cc.o"
  "CMakeFiles/refscan_cpg.dir/dump.cc.o.d"
  "librefscan_cpg.a"
  "librefscan_cpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refscan_cpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
