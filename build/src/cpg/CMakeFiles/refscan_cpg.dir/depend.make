# Empty dependencies file for refscan_cpg.
# This may be replaced when dependencies are built.
