file(REMOVE_RECURSE
  "librefscan_cpg.a"
)
