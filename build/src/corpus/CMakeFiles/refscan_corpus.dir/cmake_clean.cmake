file(REMOVE_RECURSE
  "CMakeFiles/refscan_corpus.dir/generator.cc.o"
  "CMakeFiles/refscan_corpus.dir/generator.cc.o.d"
  "CMakeFiles/refscan_corpus.dir/plan.cc.o"
  "CMakeFiles/refscan_corpus.dir/plan.cc.o.d"
  "librefscan_corpus.a"
  "librefscan_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refscan_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
