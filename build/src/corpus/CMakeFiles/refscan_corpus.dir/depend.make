# Empty dependencies file for refscan_corpus.
# This may be replaced when dependencies are built.
