file(REMOVE_RECURSE
  "librefscan_corpus.a"
)
