file(REMOVE_RECURSE
  "CMakeFiles/refscan_report.dir/table.cc.o"
  "CMakeFiles/refscan_report.dir/table.cc.o.d"
  "librefscan_report.a"
  "librefscan_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refscan_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
