file(REMOVE_RECURSE
  "librefscan_report.a"
)
