# Empty dependencies file for refscan_report.
# This may be replaced when dependencies are built.
