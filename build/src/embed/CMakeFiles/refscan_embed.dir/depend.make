# Empty dependencies file for refscan_embed.
# This may be replaced when dependencies are built.
