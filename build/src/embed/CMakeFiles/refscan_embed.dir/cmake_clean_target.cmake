file(REMOVE_RECURSE
  "librefscan_embed.a"
)
