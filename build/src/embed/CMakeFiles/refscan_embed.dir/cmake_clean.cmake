file(REMOVE_RECURSE
  "CMakeFiles/refscan_embed.dir/corpus_text.cc.o"
  "CMakeFiles/refscan_embed.dir/corpus_text.cc.o.d"
  "CMakeFiles/refscan_embed.dir/word2vec.cc.o"
  "CMakeFiles/refscan_embed.dir/word2vec.cc.o.d"
  "librefscan_embed.a"
  "librefscan_embed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refscan_embed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
