# Empty dependencies file for refscan.
# This may be replaced when dependencies are built.
