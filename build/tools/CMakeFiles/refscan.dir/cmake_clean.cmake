file(REMOVE_RECURSE
  "CMakeFiles/refscan.dir/refscan_cli.cc.o"
  "CMakeFiles/refscan.dir/refscan_cli.cc.o.d"
  "refscan"
  "refscan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refscan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
