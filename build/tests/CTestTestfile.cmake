# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/lexer_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/cfg_test[1]_include.cmake")
include("/root/repo/build/tests/kb_test[1]_include.cmake")
include("/root/repo/build/tests/cpg_test[1]_include.cmake")
include("/root/repo/build/tests/checkers_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
include("/root/repo/build/tests/histmine_test[1]_include.cmake")
include("/root/repo/build/tests/embed_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/fixes_test[1]_include.cmake")
include("/root/repo/build/tests/tools_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/checker_edge_test[1]_include.cmake")
include("/root/repo/build/tests/template_matcher_test[1]_include.cmake")
include("/root/repo/build/tests/dump_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_property_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/sinks_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_constructs_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
add_test(cli_usage "/root/repo/build/tools/refscan")
set_tests_properties(cli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;35;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_demo "/root/repo/build/tools/refscan" "demo")
set_tests_properties(cli_demo PROPERTIES  PASS_REGULAR_EXPRESSION "report" SKIP_RETURN_CODE "127" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;37;add_test;/root/repo/tests/CMakeLists.txt;0;")
