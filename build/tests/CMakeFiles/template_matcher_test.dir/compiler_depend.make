# Empty compiler generated dependencies file for template_matcher_test.
# This may be replaced when dependencies are built.
