file(REMOVE_RECURSE
  "CMakeFiles/template_matcher_test.dir/template_matcher_test.cc.o"
  "CMakeFiles/template_matcher_test.dir/template_matcher_test.cc.o.d"
  "template_matcher_test"
  "template_matcher_test.pdb"
  "template_matcher_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/template_matcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
