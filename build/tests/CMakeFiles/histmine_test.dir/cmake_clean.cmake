file(REMOVE_RECURSE
  "CMakeFiles/histmine_test.dir/histmine_test.cc.o"
  "CMakeFiles/histmine_test.dir/histmine_test.cc.o.d"
  "histmine_test"
  "histmine_test.pdb"
  "histmine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histmine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
