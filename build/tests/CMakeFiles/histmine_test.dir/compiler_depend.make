# Empty compiler generated dependencies file for histmine_test.
# This may be replaced when dependencies are built.
