file(REMOVE_RECURSE
  "CMakeFiles/kernel_constructs_test.dir/kernel_constructs_test.cc.o"
  "CMakeFiles/kernel_constructs_test.dir/kernel_constructs_test.cc.o.d"
  "kernel_constructs_test"
  "kernel_constructs_test.pdb"
  "kernel_constructs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_constructs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
