# Empty dependencies file for fixes_test.
# This may be replaced when dependencies are built.
