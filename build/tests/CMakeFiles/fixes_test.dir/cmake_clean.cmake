file(REMOVE_RECURSE
  "CMakeFiles/fixes_test.dir/fixes_test.cc.o"
  "CMakeFiles/fixes_test.dir/fixes_test.cc.o.d"
  "fixes_test"
  "fixes_test.pdb"
  "fixes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fixes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
