// Figure 2 — Distributions of refcounting bugs: per-subsystem counts (left)
// and bug density per KLOC (right). Finding 3.

#include <cstdio>

#include "src/histmine/miner.h"
#include "src/report/table.h"
#include "src/stats/stats.h"
#include "src/support/strings.h"

int main() {
  using namespace refscan;

  std::printf("== Figure 2: bug distributions over subsystems ==\n\n");

  HistoryOptions options;
  options.noise_commits = 60000;
  const History history = GenerateHistory(options);
  const MiningResult mined = MineRefcountBugs(history, KnowledgeBase::BuiltIn());
  const auto breakdown = SubsystemBreakdown(mined.dataset);

  Table table("Bugs and density per subsystem");
  table.Header({"Subsystem", "Bugs", "Share", "KLOC", "Bugs/KLOC"},
               {Align::kLeft, Align::kRight, Align::kRight, Align::kRight, Align::kRight});
  std::vector<std::pair<std::string, double>> counts;
  std::vector<std::pair<std::string, double>> densities;
  int total = 0;
  for (const SubsystemStats& s : breakdown) {
    total += s.bugs;
  }
  for (const SubsystemStats& s : breakdown) {
    table.Row({s.name, StrFormat("%d", s.bugs),
               Pct(static_cast<double>(s.bugs) / total), StrFormat("%.0f", s.kloc),
               StrFormat("%.3f", s.density)});
    counts.emplace_back(s.name, s.bugs);
    densities.emplace_back(s.name, s.density);
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf("%s\n", BarChart("Left chart: bug counts per subsystem", counts).c_str());
  std::printf("%s\n", BarChart("Right chart: bug density (bugs per KLOC)", densities).c_str());

  const int top3 = breakdown[0].bugs + breakdown[1].bugs + breakdown[2].bugs;
  std::printf("Finding 3: top-3 subsystems (%s, %s, %s) hold %d/%d = %s of all bugs "
              "(paper: 851/1033 = 82.4%%); '%s' alone holds %s (paper: 56.9%%).\n",
              breakdown[0].name.c_str(), breakdown[1].name.c_str(), breakdown[2].name.c_str(),
              top3, total, Pct(static_cast<double>(top3) / total).c_str(),
              breakdown[0].name.c_str(),
              Pct(static_cast<double>(breakdown[0].bugs) / total).c_str());
  const SubsystemStats* densest = &breakdown[0];
  for (const SubsystemStats& s : breakdown) {
    if (s.density > densest->density) {
      densest = &s;
    }
  }
  std::printf("Density: '%s' is the most bug-dense subsystem at %.3f bugs/KLOC "
              "(paper: block, 18 bugs / 65 KLOC).\n",
              densest->name.c_str(), densest->density);
  return 0;
}
