// Figure 3 — The lifetime of refcounting bugs (introduced-version to
// fixed-version lines), plus Findings 4 and 5.

#include <cstdio>

#include "src/histmine/miner.h"
#include "src/report/table.h"
#include "src/stats/stats.h"
#include "src/support/strings.h"

int main() {
  using namespace refscan;

  std::printf("== Figure 3: lifetimes of refcounting bugs ==\n\n");

  HistoryOptions options;
  options.noise_commits = 60000;
  const History history = GenerateHistory(options);
  const MiningResult mined = MineRefcountBugs(history, KnowledgeBase::BuiltIn());
  const LifetimeStats stats = LifetimeAnalysis(mined.dataset);

  Table table("Lifetime findings (tagged bugs only — those carrying Fixes: tags)");
  table.Header({"Metric", "Paper", "Measured"}, {Align::kLeft, Align::kRight, Align::kRight});
  table.Row({"Bugs with Fixes: tags", "567", StrFormat("%d", stats.with_fixes_tag)});
  table.Row({"Lifetime > 1 year", "429 (75.7%)",
             StrFormat("%d (%s)", stats.over_one_year,
                       Pct(static_cast<double>(stats.over_one_year) /
                           std::max(1, stats.with_fixes_tag))
                           .c_str())});
  table.Row({"Lifetime > 10 years", "19", StrFormat("%d", stats.over_ten_years)});
  table.Row({"  ... of which UAF", "7", StrFormat("%d", stats.over_ten_years_uaf)});
  table.Row({"v2.6 -> v5.x/v6.x survivors", "23", StrFormat("%d", stats.ancient_to_modern)});
  table.Row({"Introduced v4.x, fixed v5.x", "~135", StrFormat("%d", stats.span_v4_to_v5)});
  table.Row({"Introduced v3.x, fixed v5.x", "~80", StrFormat("%d", stats.span_v3_to_v5)});
  table.Row({"Introduced and fixed in v5.x", "~189", StrFormat("%d", stats.within_v5)});
  std::printf("%s\n", table.Render().c_str());

  // ASCII rendering of the span lines: bucket introductions per major
  // series and draw introduced->fixed histograms.
  const auto& timeline = ReleaseTimeline();
  std::map<std::pair<int, int>, int> span_matrix;  // (intro major, fixed major) -> count
  for (const auto& [intro, fixed] : stats.spans) {
    span_matrix[{timeline[static_cast<size_t>(intro)].major,
                 timeline[static_cast<size_t>(fixed)].major}]++;
  }
  Table spans("Introduced-major x fixed-major span matrix (Figure 3 lines, bucketed)");
  spans.Header({"introduced \\ fixed", "v2.6", "v3.x", "v4.x", "v5.x", "v6.x"},
               {Align::kLeft, Align::kRight, Align::kRight, Align::kRight, Align::kRight,
                Align::kRight});
  for (int intro_major : {2, 3, 4, 5}) {
    std::vector<std::string> row = {intro_major == 2 ? "v2.6" : StrFormat("v%d.x", intro_major)};
    for (int fixed_major : {2, 3, 4, 5, 6}) {
      const auto it = span_matrix.find({intro_major, fixed_major});
      row.push_back(StrFormat("%d", it != span_matrix.end() ? it->second : 0));
    }
    spans.Row(std::move(row));
  }
  std::printf("%s\n", spans.Render().c_str());

  std::printf("Finding 4: %s of tagged bugs lived longer than one year (paper: 75.7%%); "
              "%d exceeded ten years, %d of them UAF (paper: 19 / 7).\n",
              Pct(static_cast<double>(stats.over_one_year) / std::max(1, stats.with_fixes_tag))
                  .c_str(),
              stats.over_ten_years, stats.over_ten_years_uaf);
  std::printf("Finding 5: %d bugs survived from the first major release (v2.6.y) into "
              "v5.x/v6.x kernels (paper: 23).\n",
              stats.ancient_to_modern);
  std::printf("Infection: a tagged bug shipped in %.1f mainline releases on average "
              "(max %d of %zu) — ×~8 counting stable point releases (the paper's 753).\n",
              stats.mean_releases_infected, stats.max_releases_infected,
              ReleaseTimeline().size());
  return 0;
}
