// Table 5 — Per-module details of the new bugs: top-2 bug-caused APIs,
// anti-pattern instance counts, bug totals and confirmations.

#include <cstdio>

#include <algorithm>
#include <map>

#include "src/checkers/engine.h"
#include "src/corpus/generator.h"
#include "src/report/table.h"
#include "src/support/strings.h"

int main() {
  using namespace refscan;

  std::printf("== Table 5: per-module breakdown of the new bugs ==\n\n");

  const Corpus corpus = GenerateKernelCorpus();
  CheckerEngine engine;
  const ScanResult result = engine.Scan(corpus.tree);

  struct Row {
    std::map<std::string, int> api_counts;
    std::map<int, int> pattern_counts;
    int bugs = 0;
    int confirmed = 0;
    int rejected = 0;
    int no_response = 0;
  };
  std::map<std::pair<std::string, std::string>, Row> rows;

  for (const BugReport& r : result.reports) {
    const PlantedBug* bug = corpus.FindBug(r.file, r.function);
    if (bug == nullptr) {
      continue;  // planted FP shapes are tabulated in Table 4
    }
    const PathParts parts = SplitKernelPath(r.file);
    Row& row = rows[{parts.subsystem, parts.module}];
    row.bugs++;
    row.api_counts[r.api]++;
    row.pattern_counts[r.anti_pattern]++;
    switch (bug->response) {
      case MaintainerResponse::kConfirmed:
        row.confirmed++;
        break;
      case MaintainerResponse::kPatchRejected:
        row.rejected++;
        break;
      case MaintainerResponse::kNoResponse:
        row.no_response++;
        break;
    }
  }

  Table table("Per-module new-bug details (NR = all patches unanswered, PR = patch rejected)");
  table.Header({"Subsystem", "Module", "Bug-Caused API (Top-2)", "#Anti-Pattern", "#Bug",
                "Confirm"},
               {Align::kLeft, Align::kLeft, Align::kLeft, Align::kLeft, Align::kRight,
                Align::kRight});
  int total_bugs = 0;
  int total_confirmed = 0;
  std::string last_subsystem;
  for (const auto& [key, row] : rows) {
    const auto& [subsystem, module] = key;
    if (subsystem != last_subsystem && !last_subsystem.empty()) {
      table.Separator();
    }
    last_subsystem = subsystem;

    // Top-2 APIs by count.
    std::vector<std::pair<std::string, int>> apis(row.api_counts.begin(), row.api_counts.end());
    std::sort(apis.begin(), apis.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    std::string api_text;
    for (size_t i = 0; i < apis.size() && i < 2; ++i) {
      if (i > 0) {
        api_text += ", ";
      }
      api_text += StrFormat("%s[%d]", apis[i].first.c_str(), apis[i].second);
    }

    std::string pattern_text;
    for (const auto& [pattern, count] : row.pattern_counts) {
      if (!pattern_text.empty()) {
        pattern_text += " ";
      }
      pattern_text += StrFormat("P%d[%d]", pattern, count);
    }

    std::string confirm = row.confirmed > 0 ? StrFormat("%d", row.confirmed)
                          : row.rejected > 0 ? "PR"
                                             : "NR";
    if (row.rejected > 0 && row.confirmed > 0) {
      confirm += StrFormat("+%dPR", row.rejected);
    }

    table.Row({subsystem, module, api_text, pattern_text, StrFormat("%d", row.bugs), confirm});
    total_bugs += row.bugs;
    total_confirmed += row.confirmed;
  }
  table.Separator();
  table.Row({"Total", StrFormat("%zu modules", rows.size()), "", "",
             StrFormat("%d", total_bugs), StrFormat("%d", total_confirmed)});
  std::printf("%s\n", table.Render().c_str());

  std::printf("paper: 54 modules, 351 bugs, 240 confirmed; long-tailed per-module counts.\n");

  // The long-tail check from §6.2: a few modules hold most of the bugs.
  std::vector<int> counts;
  for (const auto& [key, row] : rows) {
    counts.push_back(row.bugs);
  }
  std::sort(counts.rbegin(), counts.rend());
  int top5 = 0;
  for (size_t i = 0; i < counts.size() && i < 5; ++i) {
    top5 += counts[i];
  }
  std::printf("long tail: the 5 largest modules hold %d/%d bugs (%s) — consistent with "
              "Finding 3's long-tailed distribution.\n",
              top5, total_bugs, Pct(static_cast<double>(top5) / total_bugs).c_str());
  return 0;
}
