#!/bin/sh
# Records the scan-path benchmark trajectory in google-benchmark's JSON
# format, so performance can be diffed commit-to-commit by machines instead
# of eyeballs:
#
#   bench/record_scan_trajectory.sh build/bench/perf_pipeline BENCH_scan.json
#
# or, via the CMake convenience target:
#
#   cmake --build build --target bench_scan_trajectory
#
# Covered benchmarks: the cold full-tree scan (BM_FullTreeScan and its
# threaded variant), the warm incremental rescan at 0/1/10 percent change
# rates (BM_IncrementalRescan), and the parallel on-disk tree load
# (BM_ParallelTreeLoad). The speedup of BM_IncrementalRescan/0 over
# BM_FullTreeScan is the cache's headline number (target: >= 5x).
set -eu

PERF_BIN="${1:-build/bench/perf_pipeline}"
OUT_JSON="${2:-BENCH_scan.json}"

if [ ! -x "$PERF_BIN" ]; then
  echo "error: benchmark binary not found at $PERF_BIN" >&2
  echo "build it first: cmake --build build --target perf_pipeline" >&2
  exit 1
fi

"$PERF_BIN" \
  --benchmark_filter='BM_FullTreeScan|BM_FullTreeScanParallel|BM_IncrementalRescan|BM_ParallelTreeLoad' \
  --benchmark_out="$OUT_JSON" \
  --benchmark_out_format=json \
  --benchmark_repetitions=1

echo "wrote $OUT_JSON"
