#!/bin/sh
# Records the scan-path benchmark trajectory in google-benchmark's JSON
# format, so performance can be diffed commit-to-commit by machines instead
# of eyeballs:
#
#   bench/record_scan_trajectory.sh                # configure+build Release, then record
#   bench/record_scan_trajectory.sh build-rel/bench/perf_pipeline BENCH_scan.json
#
# With no binary argument the script configures and builds a Release tree at
# ./build-rel itself: trajectory numbers recorded from a Debug binary are
# meaningless for diffing (3-10x off) and a previous revision of this file
# let exactly that happen. The build type baked into the binary is embedded
# in the output JSON (context.library_build_type) and verified below; a
# non-release binary is refused unless REFSCAN_BENCH_ALLOW_DEBUG=1.
#
# Covered benchmarks: the cold full-tree scan (BM_FullTreeScan, its
# threaded variant, and BM_FullTreeScanAllFamilies — the P10-P12 + dialect
# configuration of DESIGN.md §5.12), the warm incremental rescan at 0/1/10
# percent change rates (BM_IncrementalRescan), the parallel on-disk tree load
# (BM_ParallelTreeLoad), and the memory-layer micro-benches
# (BM_InternerLookup, BM_KbFindApi — DESIGN.md §5.11). The speedup of
# BM_IncrementalRescan/0 over BM_FullTreeScan is the cache's headline
# number (target: >= 5x).
set -eu

PERF_BIN="${1:-}"
OUT_JSON="${2:-BENCH_scan.json}"

if [ -z "$PERF_BIN" ]; then
  PERF_BIN="build-rel/bench/perf_pipeline"
  echo "no binary given: building Release tree at ./build-rel" >&2
  cmake -S . -B build-rel -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build build-rel --target perf_pipeline -j"$(nproc)" >/dev/null
fi

if [ ! -x "$PERF_BIN" ]; then
  echo "error: benchmark binary not found at $PERF_BIN" >&2
  echo "build it first: cmake --build build-rel --target perf_pipeline" >&2
  exit 1
fi

"$PERF_BIN" \
  --benchmark_filter='BM_FullTreeScan|BM_FullTreeScanAllFamilies|BM_FullTreeScanParallel|BM_IncrementalRescan|BM_ParallelTreeLoad|BM_InternerLookup|BM_KbFindApi' \
  --benchmark_out="$OUT_JSON" \
  --benchmark_out_format=json \
  --benchmark_repetitions=1

# perf_pipeline embeds its own CMAKE_BUILD_TYPE (context.refscan_build_type);
# don't trust library_build_type, which reflects the benchmark *library*
# (Debian ships a debug libbenchmark under release userland).
BUILD_TYPE="$(sed -n 's/.*"refscan_build_type": "\([A-Za-z]*\)".*/\1/p' "$OUT_JSON" | head -1)"
if [ "$BUILD_TYPE" != "Release" ] && [ "${REFSCAN_BENCH_ALLOW_DEBUG:-0}" != "1" ]; then
  echo "error: $PERF_BIN is a '$BUILD_TYPE' build; trajectory rows must come" >&2
  echo "from Release (set REFSCAN_BENCH_ALLOW_DEBUG=1 to override)" >&2
  exit 1
fi

echo "wrote $OUT_JSON (build type: $BUILD_TYPE)"
