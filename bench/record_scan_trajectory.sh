#!/bin/sh
# Records the scan-path benchmark trajectory, one history row per run, so
# performance can be diffed commit-to-commit by machines instead of
# eyeballs:
#
#   bench/record_scan_trajectory.sh                # configure+build Release, then record
#   bench/record_scan_trajectory.sh build-rel/bench/perf_pipeline BENCH_scan.json
#
# The output file wraps every recorded run:
#
#   {"refscan_bench_history": [ <google-benchmark JSON run>, ... ]}
#
# Each element is one full google-benchmark JSON document (context +
# benchmarks), newest last, so the trajectory of any benchmark is
# `jq '.refscan_bench_history[].benchmarks[] | select(.name == "...")'`.
# A legacy single-snapshot BENCH_scan.json (bare google-benchmark output) is
# migrated in place: it becomes the first history row. Appending needs jq;
# without jq the script refuses rather than silently overwriting history.
#
# With no binary argument the script configures and builds a Release tree at
# ./build-rel itself: trajectory numbers recorded from a Debug binary are
# meaningless for diffing (3-10x off) and a previous revision of this file
# let exactly that happen. The build type baked into the binary is embedded
# in each run's JSON (context.refscan_build_type) and verified below; a
# non-release binary is refused unless REFSCAN_BENCH_ALLOW_DEBUG=1.
#
# Covered benchmarks: the cold full-tree scan (BM_FullTreeScan, its
# threaded variant, and BM_FullTreeScanAllFamilies — the P10-P12 + dialect
# configuration of DESIGN.md §5.12), the warm incremental rescan at 0/1/10
# percent change rates (BM_IncrementalRescan), the sharded multi-process
# scan cold and over a shared warm store (BM_ShardedScan,
# BM_ShardedScanWarmShared — DESIGN.md §5.13), the parallel on-disk tree
# load (BM_ParallelTreeLoad), the memory-layer micro-benches
# (BM_InternerLookup, BM_KbFindApi — DESIGN.md §5.11), and the ~1 MLOC
# kernel-realism scan with streaming off/on (BM_KernelishScan — DESIGN.md
# §5.15). The speedup of BM_IncrementalRescan/0 over BM_FullTreeScan is the
# cache's headline number (target: >= 5x).
set -eu

PERF_BIN="${1:-}"
OUT_JSON="${2:-BENCH_scan.json}"

if [ -z "$PERF_BIN" ]; then
  PERF_BIN="build-rel/bench/perf_pipeline"
  echo "no binary given: building Release tree at ./build-rel" >&2
  cmake -S . -B build-rel -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build build-rel --target perf_pipeline -j"$(nproc)" >/dev/null
fi

if [ ! -x "$PERF_BIN" ]; then
  echo "error: benchmark binary not found at $PERF_BIN" >&2
  echo "build it first: cmake --build build-rel --target perf_pipeline" >&2
  exit 1
fi

if ! command -v jq >/dev/null 2>&1; then
  echo "error: jq is required to append to the benchmark history" >&2
  exit 1
fi

RUN_JSON="$(mktemp "${TMPDIR:-/tmp}/refscan_bench_run.XXXXXX.json")"
trap 'rm -f "$RUN_JSON"' EXIT

"$PERF_BIN" \
  --benchmark_filter='BM_FullTreeScan|BM_FullTreeScanAllFamilies|BM_FullTreeScanParallel|BM_IncrementalRescan|BM_ShardedScan|BM_ParallelTreeLoad|BM_InternerLookup|BM_KbFindApi|BM_KernelishScan' \
  --benchmark_out="$RUN_JSON" \
  --benchmark_out_format=json \
  --benchmark_repetitions=1

# perf_pipeline embeds its own CMAKE_BUILD_TYPE (context.refscan_build_type);
# don't trust library_build_type, which reflects the benchmark *library*
# (Debian ships a debug libbenchmark under release userland).
BUILD_TYPE="$(jq -r '.context.refscan_build_type // "unknown"' "$RUN_JSON")"
if [ "$BUILD_TYPE" != "Release" ] && [ "${REFSCAN_BENCH_ALLOW_DEBUG:-0}" != "1" ]; then
  echo "error: $PERF_BIN is a '$BUILD_TYPE' build; trajectory rows must come" >&2
  echo "from Release (set REFSCAN_BENCH_ALLOW_DEBUG=1 to override)" >&2
  exit 1
fi

# Append the run to the history, migrating a legacy bare snapshot into the
# first row. jq writes the merged file to a sibling temp, then rename keeps
# the update atomic against readers.
if [ -f "$OUT_JSON" ]; then
  HISTORY_KIND="$(jq -r 'if has("refscan_bench_history") then "history"
                         elif has("benchmarks") then "legacy"
                         else "other" end' "$OUT_JSON" 2>/dev/null || echo "other")"
else
  HISTORY_KIND="missing"
fi
case "$HISTORY_KIND" in
  history)
    jq --slurpfile run "$RUN_JSON" \
       '.refscan_bench_history += $run' "$OUT_JSON" >"$OUT_JSON.tmp"
    ;;
  legacy)
    jq --slurpfile run "$RUN_JSON" \
       '{refscan_bench_history: ([.] + $run)}' "$OUT_JSON" >"$OUT_JSON.tmp"
    ;;
  *)
    jq '{refscan_bench_history: [.]}' "$RUN_JSON" >"$OUT_JSON.tmp"
    ;;
esac
mv "$OUT_JSON.tmp" "$OUT_JSON"

ROWS="$(jq '.refscan_bench_history | length' "$OUT_JSON")"
echo "wrote $OUT_JSON (build type: $BUILD_TYPE, history rows: $ROWS)"
