// Figure 1 — The growth trend of refcounting bugs in Linux kernels
// 2005-2022. Regenerates the series by synthesising the commit history,
// running the two-level mining pipeline, and counting mined bugs per
// fixed-year.

#include <cstdio>

#include "src/histmine/history.h"
#include "src/histmine/miner.h"
#include "src/report/table.h"
#include "src/stats/stats.h"
#include "src/support/strings.h"

int main() {
  using namespace refscan;

  std::printf("== Figure 1: growth trend of refcounting bugs (2005-2022) ==\n\n");

  HistoryOptions options;
  options.noise_commits = 60000;
  const History history = GenerateHistory(options);
  const MiningResult mined = MineRefcountBugs(history, KnowledgeBase::BuiltIn());
  std::printf("mined %zu commits -> %zu level-1 candidates -> %zu confirmed bugs "
              "(paper: ~1M commits -> 1,825 -> 1,033)\n\n",
              mined.total_commits, mined.level1_candidates.size(), mined.dataset.size());

  const std::map<int, int> trend = GrowthTrend(mined.dataset);

  Table table("Refcounting bug fixes per year");
  table.Header({"Year", "Paper (calibration)", "Measured"}, {Align::kLeft, Align::kRight,
                                                             Align::kRight});
  std::vector<std::pair<int, double>> series;
  int paper_total = 0;
  int measured_total = 0;
  for (const auto& [year, target] : Figure1GrowthTargets()) {
    const auto it = trend.find(year);
    const int measured = it != trend.end() ? it->second : 0;
    table.Row({StrFormat("%d", year), StrFormat("%d", target), StrFormat("%d", measured)});
    series.emplace_back(year, measured);
    paper_total += target;
    measured_total += measured;
  }
  table.Separator();
  table.Row({"Total", StrFormat("%d", paper_total), StrFormat("%d", measured_total)});
  std::printf("%s\n", table.Render().c_str());

  std::printf("%s\n", SeriesChart("Measured bugs per year (ASCII rendering of Figure 1)", series,
                                  14)
                          .c_str());
  return 0;
}
