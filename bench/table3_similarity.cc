// Table 3 — Semantic similarities between refcounting API keywords and
// bug-caused API keywords, via word2vec (CBOW) trained on the synthetic
// commit logs plus the corpus source text (the paper trained on >1M commit
// logs "including the code and comment text").

#include <cstdio>

#include "src/corpus/generator.h"
#include "src/embed/corpus_text.h"
#include "src/embed/word2vec.h"
#include "src/histmine/history.h"
#include "src/report/table.h"
#include "src/support/strings.h"

int main() {
  using namespace refscan;

  std::printf("== Table 3: keyword semantic similarities (word2vec CBOW) ==\n\n");

  HistoryOptions history_options;
  history_options.noise_commits = 30000;
  const History history = GenerateHistory(history_options);
  std::vector<std::vector<std::string>> sentences = BuildCommitSentences(history);
  const Corpus corpus = GenerateKernelCorpus();
  AppendSourceSentences(corpus.tree, sentences);
  std::printf("training corpus: %zu sentences (commit logs + kernel-corpus source text)\n\n",
              sentences.size());

  Word2Vec model;
  EmbedOptions options;
  options.epochs = 4;
  model.Train(sentences, options);
  std::printf("vocabulary: %zu words, dim %d, window %d, %d negatives\n\n", model.vocab_size(),
              options.dim, options.window, options.negatives);

  const char* rows[] = {"refcount", "increase", "get",    "hold", "grab", "retain",
                        "decrease", "put",      "unhold", "drop", "release"};
  const char* cols[] = {"foreach", "find", "parse", "open", "probe", "register"};

  // The paper's Table 3 values for the side-by-side comparison.
  const std::map<std::string, std::vector<double>> paper = {
      {"refcount", {0.19, 0.33, 0.16, 0.30, 0.28, 0.19}},
      {"increase", {0.22, 0.35, 0.29, 0.23, 0.25, 0.24}},
      {"get", {0.32, 0.73, 0.61, 0.43, 0.46, 0.48}},
      {"hold", {0.29, 0.43, 0.28, 0.32, 0.23, 0.30}},
      {"grab", {0.27, 0.52, 0.33, 0.36, 0.28, 0.29}},
      {"retain", {0.14, 0.32, 0.28, 0.17, 0.09, 0.25}},
      {"decrease", {0.21, 0.39, 0.27, 0.26, 0.27, 0.15}},
      {"put", {0.38, 0.58, 0.48, 0.46, 0.39, 0.36}},
      {"unhold", {-0.13, 0.10, -0.02, 0.07, -0.03, -0.14}},
      {"drop", {0.22, 0.33, 0.38, 0.22, 0.25, 0.30}},
      {"release", {0.33, 0.53, 0.43, 0.48, 0.49, 0.37}},
  };

  Table table("Measured cosine similarities (paper value in parentheses)");
  std::vector<std::string> header = {"RC keyword"};
  for (const char* c : cols) {
    header.emplace_back(c);
  }
  table.Header(std::move(header));
  for (const char* r : rows) {
    std::vector<std::string> cells = {r};
    const auto& paper_row = paper.at(r);
    for (size_t c = 0; c < std::size(cols); ++c) {
      cells.push_back(StrFormat("%.2f (%.2f)", model.Similarity(r, cols[c]), paper_row[c]));
    }
    table.Row(std::move(cells));
  }
  std::printf("%s\n", table.Render().c_str());

  // Shape checks the paper calls out in §5.2.2.
  const double find_get = model.Similarity("find", "get");
  const double find_put = model.Similarity("find", "put");
  std::printf("shape: find<->get = %.2f (paper 0.73, highest in the matrix); "
              "find<->put = %.2f (paper 0.58)\n",
              find_get, find_put);
  std::printf("shape: foreach<->refcount = %.2f (paper 0.19) — smartloop names do not sound "
              "like refcounting, which is why developers miss the hidden get (Finding, §5.2)\n",
              model.Similarity("foreach", "refcount"));
  std::printf("nearest neighbours of 'find':");
  for (const auto& [word, sim] : model.MostSimilar("find", 5)) {
    std::printf(" %s(%.2f)", word.c_str(), sim);
  }
  std::printf("\n");
  return 0;
}
