// Ablation + baseline comparison (§6.2 lessons and §8 related work):
//   * per-anti-pattern ablation: each checker's contribution to recall;
//   * comparison against the three prior-work baseline strategies
//     (paired-consistency / escape-invariant / cross-check) on precision.

#include <cstdio>

#include <map>
#include <set>

#include "src/baselines/baselines.h"
#include "src/checkers/engine.h"
#include "src/checkers/templates.h"
#include "src/corpus/generator.h"
#include "src/report/table.h"
#include "src/support/strings.h"

int main() {
  using namespace refscan;

  std::printf("== Ablation and baseline comparison ==\n\n");

  const Corpus corpus = GenerateKernelCorpus();

  // ---- Full engine run.
  CheckerEngine engine;
  const ScanResult full = engine.Scan(corpus.tree);

  auto evaluate = [&corpus](const std::vector<BugReport>& reports) {
    std::set<std::pair<std::string, std::string>> hits;
    int fps = 0;
    for (const BugReport& r : reports) {
      if (corpus.FindBug(r.file, r.function) != nullptr) {
        hits.emplace(r.file, r.function);
      } else {
        ++fps;
      }
    }
    return std::make_pair(static_cast<int>(hits.size()), fps);
  };

  // ---- Per-pattern ablation: run with exactly one pattern enabled.
  Table ablation("Per-anti-pattern ablation (single checker enabled)");
  ablation.Header({"Checker", "Planted", "Detected", "Recall", "Extra reports"},
                  {Align::kLeft, Align::kRight, Align::kRight, Align::kRight, Align::kRight});
  std::map<int, int> planted_per_pattern;
  for (const PlantedBug& bug : corpus.ground_truth) {
    planted_per_pattern[bug.anti_pattern]++;
  }
  for (int p = 1; p <= 9; ++p) {
    ScanOptions options;
    options.enabled_patterns = {p};
    CheckerEngine single(KnowledgeBase::BuiltIn(), options);
    const ScanResult result = single.Scan(corpus.tree);
    int detected = 0;
    int extra = 0;
    for (const BugReport& r : result.reports) {
      const PlantedBug* bug = corpus.FindBug(r.file, r.function);
      if (bug != nullptr && bug->anti_pattern == p) {
        ++detected;
      } else if (bug == nullptr && !corpus.IsPlantedFp(r.file, r.function)) {
        ++extra;
      }
    }
    const int planted = planted_per_pattern[p];
    ablation.Row({StrFormat("P%d %s", p, std::string(AntiPatternName(p)).c_str()),
                  StrFormat("%d", planted), StrFormat("%d", detected),
                  planted > 0 ? Pct(static_cast<double>(detected) / planted) : "-",
                  StrFormat("%d", extra)});
  }
  std::printf("%s\n", ablation.Render().c_str());

  // ---- New-family axis (DESIGN.md §5.12): the same single-checker sweep
  // for P10-P12 over the corpus grown with the new-family modules, dialect
  // catalogues applied. Measured separately so the P1-P9 table above stays
  // pinned to the paper's corpus.
  {
    CorpusOptions extended_options;
    extended_options.new_family_modules = true;
    const Corpus extended = GenerateKernelCorpus(extended_options);
    std::map<int, int> planted_new;
    for (const PlantedBug& bug : extended.ground_truth) {
      if (bug.anti_pattern >= 10) {
        planted_new[bug.anti_pattern]++;
      }
    }
    Table newfam("New-family ablation (P10-P12, extended corpus, --dialect glib,uacpi)");
    newfam.Header({"Checker", "Planted", "Detected", "Recall", "Extra reports"},
                  {Align::kLeft, Align::kRight, Align::kRight, Align::kRight, Align::kRight});
    for (int p = 10; p <= 12; ++p) {
      ScanOptions options;
      options.enabled_patterns = {p};
      options.dialects = {"glib", "uacpi"};
      CheckerEngine single(KnowledgeBase::BuiltIn(), options);
      const ScanResult result = single.Scan(extended.tree);
      int detected = 0;
      int extra = 0;
      for (const BugReport& r : result.reports) {
        const PlantedBug* bug = extended.FindBug(r.file, r.function);
        if (bug != nullptr && bug->anti_pattern == p) {
          ++detected;
        } else if (bug == nullptr && !extended.IsPlantedFp(r.file, r.function)) {
          ++extra;
        }
      }
      const int planted = planted_new[p];
      newfam.Row({StrFormat("P%d %s", p, std::string(AntiPatternName(p)).c_str()),
                  StrFormat("%d", planted), StrFormat("%d", detected),
                  planted > 0 ? Pct(static_cast<double>(detected) / planted) : "-",
                  StrFormat("%d", extra)});
    }
    std::printf("%s\n", newfam.Render().c_str());
  }

  // ---- Design-choice ablation: disable one precision feature at a time
  // and measure the damage (the checkers' precision comes from exactly
  // these two pieces of reasoning).
  {
    struct Config {
      const char* name;
      bool prune_null;
      bool transfers;
      bool interprocedural;
    };
    const Config kConfigs[] = {
        {"full engine", true, true, false},
        {"+ interprocedural summaries", true, true, true},
        {"no NULL-branch pruning", false, true, false},
        {"no ownership-transfer modelling", true, false, false},
        {"neither (naive matcher)", false, false, false},
    };
    Table knobs("Design-choice ablation (precision features off one at a time)");
    knobs.Header({"Configuration", "Reports", "TP funcs", "FPs", "Precision"},
                 {Align::kLeft, Align::kRight, Align::kRight, Align::kRight, Align::kRight});
    for (const Config& config : kConfigs) {
      ScanOptions options;
      options.prune_null_branches = config.prune_null;
      options.model_ownership_transfer = config.transfers;
      options.interprocedural = config.interprocedural;
      CheckerEngine ablated(KnowledgeBase::BuiltIn(), options);
      const ScanResult result = ablated.Scan(corpus.tree);
      std::set<std::pair<std::string, std::string>> hits;
      int fps = 0;
      for (const BugReport& r : result.reports) {
        if (corpus.FindBug(r.file, r.function) != nullptr) {
          hits.emplace(r.file, r.function);
        } else if (!corpus.IsPlantedFp(r.file, r.function)) {
          ++fps;
        }
      }
      const double precision =
          result.reports.empty() ? 0
                                 : static_cast<double>(hits.size()) / result.reports.size();
      knobs.Row({config.name, StrFormat("%zu", result.reports.size()),
                 StrFormat("%zu", hits.size()), StrFormat("%d", fps), Pct(precision)});
    }
    std::printf("%s\n", knobs.Render().c_str());
  }

  // ---- Detection vs wrapper depth: the corpus variant that buries the
  // acquire/release APIs under 2 and 3 layers of helper functions. Depth 2
  // is reachable by two-round discovery for the transfer-shaped patterns;
  // depth 3 (and the 𝒢_E/deref-dependent P1/P8 at any depth) needs the
  // interprocedural summary stage.
  {
    CorpusOptions wrapper_options;
    wrapper_options.wrapper_chain_depths = {2, 3};
    const Corpus wrapped = GenerateKernelCorpus(wrapper_options);

    Table depth("Detection vs wrapper depth (interprocedural summaries off/on)");
    depth.Header({"Depth", "Planted", "Detected (off)", "Detected (on)", "Recall (on)"},
                 {Align::kLeft, Align::kRight, Align::kRight, Align::kRight, Align::kRight});
    for (const bool interprocedural : {false, true}) {
      ScanOptions options;
      options.interprocedural = interprocedural;
      CheckerEngine scanner(KnowledgeBase::BuiltIn(), options);
      const ScanResult result = scanner.Scan(wrapped.tree);
      std::map<int, std::pair<int, int>> by_depth;  // depth -> {planted, detected}
      for (const PlantedBug& bug : wrapped.ground_truth) {
        if (bug.wrapper_depth < 2) {
          continue;
        }
        by_depth[bug.wrapper_depth].first++;
        for (const BugReport& r : result.reports) {
          if (r.file == bug.file && r.function == bug.function &&
              r.anti_pattern == bug.anti_pattern) {
            by_depth[bug.wrapper_depth].second++;
            break;
          }
        }
      }
      static std::map<int, int> detected_off;
      if (!interprocedural) {
        for (const auto& [d, counts] : by_depth) {
          detected_off[d] = counts.second;
        }
        continue;
      }
      for (const auto& [d, counts] : by_depth) {
        depth.Row({StrFormat("%d wrappers", d), StrFormat("%d", counts.first),
                   StrFormat("%d", detected_off[d]), StrFormat("%d", counts.second),
                   counts.first > 0 ? Pct(static_cast<double>(counts.second) / counts.first)
                                    : "-"});
      }
    }
    std::printf("%s\n", depth.Render().c_str());
  }

  // ---- Baselines.
  const BaselineResult baselines = RunBaselines(corpus.tree, KnowledgeBase::BuiltIn());

  auto evaluate_baseline = [&corpus](const std::vector<BaselineReport>& reports) {
    std::set<std::pair<std::string, std::string>> hits;
    int fps = 0;
    for (const BaselineReport& r : reports) {
      if (corpus.FindBug(r.file, r.function) != nullptr) {
        hits.emplace(r.file, r.function);
      } else if (!corpus.IsPlantedFp(r.file, r.function)) {
        ++fps;
      }
    }
    return std::make_pair(static_cast<int>(hits.size()), fps);
  };

  const auto [our_tp, our_fp] = evaluate(full.reports);
  const auto [pc_tp, pc_fp] = evaluate_baseline(baselines.paired_consistency);
  const auto [ei_tp, ei_fp] = evaluate_baseline(baselines.escape_invariant);
  const auto [cc_tp, cc_fp] = evaluate_baseline(baselines.cross_check);

  const int planted = static_cast<int>(corpus.ground_truth.size());
  auto fmt_row = [planted](const char* name, int tp, int fp, int reports) {
    const double precision = reports > 0 ? static_cast<double>(tp) / reports : 0;
    return std::vector<std::string>{
        name,
        StrFormat("%d", reports),
        StrFormat("%d", tp),
        StrFormat("%d", fp),
        Pct(static_cast<double>(tp) / planted),
        Pct(precision),
    };
  };

  Table compare("Checkers vs prior-work baseline strategies (351 planted bugs)");
  compare.Header({"Detector", "Reports", "TP funcs", "FPs", "Recall", "Precision"},
                 {Align::kLeft, Align::kRight, Align::kRight, Align::kRight, Align::kRight,
                  Align::kRight});
  compare.Row(fmt_row("anti-pattern checkers (P1-P9)", our_tp, our_fp,
                      static_cast<int>(full.reports.size())));
  compare.Row(fmt_row("paired-consistency (RID-style)", pc_tp, pc_fp,
                      static_cast<int>(baselines.paired_consistency.size())));
  compare.Row(fmt_row("escape-invariant (LinKRID-style)", ei_tp, ei_fp,
                      static_cast<int>(baselines.escape_invariant.size())));
  compare.Row(fmt_row("cross-check (majority vote)", cc_tp, cc_fp,
                      static_cast<int>(baselines.cross_check.size())));
  std::printf("%s\n", compare.Render().c_str());

  std::printf("paper: LinKRID-style invariant checking suffers ~60%% false positives on kernel\n"
              "code (§8); the anti-pattern checkers report 351 bugs + 5 known-FP shapes.\n");
  return 0;
}
