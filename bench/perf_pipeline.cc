// Performance microbenchmarks (google-benchmark) for the analysis pipeline:
// tokenizing, parsing, CFG+CPG construction, full-tree scanning, history
// mining, and one word2vec training step. Not a paper table — engineering
// numbers for the README.

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "src/ast/parser.h"
#include "src/checkers/engine.h"
#include "src/checkers/sharded.h"
#include "src/corpus/generator.h"
#include "src/cpg/cpg.h"
#include "src/embed/corpus_text.h"
#include "src/embed/word2vec.h"
#include "src/histmine/miner.h"
#include "src/ipa/summary.h"
#include "src/lexer/lexer.h"
#include "src/serve/client.h"
#include "src/serve/serve.h"
#include "src/support/fs.h"
#include "src/support/telemetry.h"
#include "src/support/threadpool.h"

namespace refscan {
namespace {

const SourceFile& SampleFile() {
  static const SourceFile* file = [] {
    const Corpus corpus = GenerateKernelCorpus();
    // Pick the largest generated file as the representative input.
    const SourceFile* largest = nullptr;
    for (const auto& [path, f] : corpus.tree.files()) {
      if (largest == nullptr || f.text().size() > largest->text().size()) {
        largest = &f;
      }
    }
    return new SourceFile(*largest);
  }();
  return *file;
}

void BM_Tokenize(benchmark::State& state) {
  const SourceFile& file = SampleFile();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Tokenize(file));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(file.text().size()));
}
BENCHMARK(BM_Tokenize);

void BM_ParseFile(benchmark::State& state) {
  const SourceFile& file = SampleFile();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParseFile(file));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(file.text().size()));
}
BENCHMARK(BM_ParseFile);

void BM_BuildCfgCpg(benchmark::State& state) {
  const SourceFile& file = SampleFile();
  const TranslationUnit unit = ParseFile(file);
  const KnowledgeBase kb = KnowledgeBase::BuiltIn();
  for (auto _ : state) {
    for (const FunctionDef& fn : unit.functions) {
      const Cfg cfg = BuildCfg(fn);
      benchmark::DoNotOptimize(BuildCpg(cfg, kb));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(unit.functions.size()));
}
BENCHMARK(BM_BuildCfgCpg);

// Interner hit path (DESIGN.md §5.11): re-interning an already-known mix of
// identifiers, the lexer/parser steady state. Most lookups resolve in the
// per-thread direct-mapped cache without touching a shard mutex.
void BM_InternerLookup(benchmark::State& state) {
  const SourceFile& file = SampleFile();
  const std::vector<Token> tokens = Tokenize(file);
  std::vector<std::string_view> words;
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kIdentifier) {
      words.push_back(t.text);
    }
  }
  for (const std::string_view w : words) {
    Intern(w);  // warm: the benchmark measures the known-symbol path
  }
  for (auto _ : state) {
    for (const std::string_view w : words) {
      benchmark::DoNotOptimize(Intern(w));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(words.size()));
}
BENCHMARK(BM_InternerLookup);

// Symbol-keyed KB lookup, the checkers' innermost query: one hash over a
// 32-bit id instead of hashing API-name text. Mixes hits (discovered +
// builtin APIs) with misses (ordinary identifiers) like real call sites.
void BM_KbFindApi(benchmark::State& state) {
  const KnowledgeBase& kb = KnowledgeBase::BuiltIn();
  const SourceFile& file = SampleFile();
  const TranslationUnit unit = ParseFile(file);
  std::vector<Symbol> callees;
  for (const FunctionDef& fn : unit.functions) {
    ForEachExpr(*fn.body, [&](const Expr& e) {
      if (e.kind == Expr::Kind::kCall) {
        const Symbol name = e.CalleeName();
        if (!name.empty()) {
          callees.push_back(name);
        }
      }
    });
  }
  for (auto _ : state) {
    for (const Symbol name : callees) {
      benchmark::DoNotOptimize(kb.FindApi(name));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(callees.size()));
}
BENCHMARK(BM_KbFindApi);

void BM_FullTreeScan(benchmark::State& state) {
  static const Corpus* corpus = new Corpus(GenerateKernelCorpus());
  for (auto _ : state) {
    CheckerEngine engine;
    benchmark::DoNotOptimize(engine.Scan(corpus->tree));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(corpus->tree.size()));
}
BENCHMARK(BM_FullTreeScan)->Unit(benchmark::kMillisecond);

// BM_FullTreeScan with the P10-P12 extension families and both userspace
// dialect catalogues enabled, over the corpus grown with the new-family
// modules (DESIGN.md §5.12). Compare against BM_FullTreeScan for the
// marginal cost of the three extra checkers + dialect KB seeding — the new
// checkers are single-pass over events/traces, so the delta should track
// the ~1% corpus growth, not multiply it.
void BM_FullTreeScanAllFamilies(benchmark::State& state) {
  static const Corpus* corpus = [] {
    CorpusOptions options;
    options.new_family_modules = true;
    return new Corpus(GenerateKernelCorpus(options));
  }();
  ScanOptions options;
  options.enabled_patterns = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  options.dialects = {"glib", "uacpi"};
  for (auto _ : state) {
    CheckerEngine engine(KnowledgeBase::BuiltIn(), options);
    benchmark::DoNotOptimize(engine.Scan(corpus->tree));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(corpus->tree.size()));
}
BENCHMARK(BM_FullTreeScanAllFamilies)->Unit(benchmark::kMillisecond);

// BM_FullTreeScan with a telemetry session armed (DESIGN.md §5.10): every
// stage/file span records and the metrics registry counts. The overhead
// budget is "within noise disarmed" (BM_FullTreeScan is the disarmed
// number — span sites cost one branch there) and single-digit percent
// armed; compare the two to check it.
void BM_FullTreeScanTraced(benchmark::State& state) {
  static const Corpus* corpus = new Corpus(GenerateKernelCorpus());
  for (auto _ : state) {
    Telemetry session;
    ScopedTelemetry arm(session);
    CheckerEngine engine;
    benchmark::DoNotOptimize(engine.Scan(corpus->tree));
    benchmark::DoNotOptimize(session.event_count());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(corpus->tree.size()));
}
BENCHMARK(BM_FullTreeScanTraced)->Unit(benchmark::kMillisecond);

// The threaded scan at 1/2/4/8 workers — BM_FullTreeScan's pipeline with
// ScanOptions::jobs set. Real time (not per-thread CPU time) is the number
// that shows the fan-out paying off; compare against BM_FullTreeScan to get
// the speedup curve (acceptance target: >= 2x at 4 threads on >= 4 cores).
void BM_FullTreeScanParallel(benchmark::State& state) {
  static const Corpus* corpus = new Corpus(GenerateKernelCorpus());
  ScanOptions options;
  options.jobs = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    CheckerEngine engine(KnowledgeBase::BuiltIn(), options);
    benchmark::DoNotOptimize(engine.Scan(corpus->tree));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(corpus->tree.size()));
}
BENCHMARK(BM_FullTreeScanParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// The sharded multi-process scan (DESIGN.md §5.13) at 1/2/4 worker
// subprocesses, cold (no cache). Arg is the worker count; compare against
// BM_FullTreeScan for the fork/IPC overhead and against it on a multi-core
// host for the wall-clock speedup (acceptance target: >= 1.5x cold at 4
// workers on >= 2 cores; on a 1-vCPU runner the comparison is CPU-bound and
// the interesting number is the overhead staying single-digit percent).
void BM_ShardedScan(benchmark::State& state) {
  static const Corpus* corpus = new Corpus(GenerateKernelCorpus());
  ScanOptions options;
  ShardedScanConfig config;
  config.workers = static_cast<size_t>(state.range(0));
  config.worker_cmd = REFSCAN_CLI_PATH;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ShardedScan(corpus->tree, options, config));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(corpus->tree.size()));
}
BENCHMARK(BM_ShardedScan)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// The warm-fleet configuration: every worker shares one pre-warmed local
// object store, so a 0-changed-files rescan should skip parse+check for
// every file in every shard (the >= 90% parse-skip acceptance criterion of
// DESIGN.md §5.13). Compare against BM_ShardedScan at the same worker count
// for the cache win, and against BM_IncrementalRescan/0 for the marginal
// cost of the process fan-out on an already-warm tree.
void BM_ShardedScanWarmShared(benchmark::State& state) {
  static const Corpus* corpus = new Corpus(GenerateKernelCorpus());
  namespace stdfs = std::filesystem;
  const std::string cache_dir =
      (stdfs::temp_directory_path() / "refscan_bench_sharded_warm").string();
  ScanOptions options;
  options.cache_dir = cache_dir;
  ShardedScanConfig config;
  config.workers = static_cast<size_t>(state.range(0));
  config.worker_cmd = REFSCAN_CLI_PATH;
  stdfs::remove_all(cache_dir);
  benchmark::DoNotOptimize(ShardedScan(corpus->tree, options, config));  // prime
  for (auto _ : state) {
    benchmark::DoNotOptimize(ShardedScan(corpus->tree, options, config));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(corpus->tree.size()));
  stdfs::remove_all(cache_dir);
}
BENCHMARK(BM_ShardedScanWarmShared)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// A generated kernel-realism tree (CorpusOptions::kernelish_modules,
// DESIGN.md §5.15): ~1 MLOC of attribute/asm/statement-expression/CRLF/
// splice heavy C with one deliberately unparseable function in every other
// module, so the run also exercises function-granular quarantine at scale.
// Arg toggles ScanOptions::streaming; compare the two for the streaming
// lifecycle's time cost (its memory win shows in EXPERIMENTS.md's RSS
// column, which google-benchmark does not measure).
void BM_KernelishScan(benchmark::State& state) {
  static const Corpus* corpus = [] {
    CorpusOptions options;
    options.kernelish_modules = 1200;  // ~850 lines per module -> ~1 MLOC
    return new Corpus(GenerateKernelCorpus(options));
  }();
  static const uint64_t lines = [] {
    uint64_t total = 0;
    for (const auto& [path, file] : corpus->tree.files()) {
      total += file.line_count();
    }
    return total;
  }();
  ScanOptions options;
  options.jobs = 4;
  options.streaming = state.range(0) != 0;
  for (auto _ : state) {
    CheckerEngine engine(KnowledgeBase::BuiltIn(), options);
    benchmark::DoNotOptimize(engine.Scan(corpus->tree));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(lines));
}
BENCHMARK(BM_KernelishScan)->Arg(0)->Arg(1)->UseRealTime()->Unit(benchmark::kMillisecond);

// Stage 2.5 in isolation: call graph + bottom-up summary propagation over
// the whole corpus (parse and discovery excluded), at 1 and 4 workers.
void BM_SummaryComputation(benchmark::State& state) {
  static const Corpus* corpus = new Corpus(GenerateKernelCorpus());
  static const auto* parsed = [] {
    auto* units = new std::vector<TranslationUnit>();
    for (const auto& [path, file] : corpus->tree.files()) {
      units->push_back(ParseFile(file));
    }
    return units;
  }();
  std::vector<const TranslationUnit*> ptrs;
  for (const TranslationUnit& unit : *parsed) {
    ptrs.push_back(&unit);
  }
  ThreadPool pool(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    KnowledgeBase kb = KnowledgeBase::BuiltIn();
    for (const TranslationUnit& unit : *parsed) {
      kb.DiscoverFromUnit(unit);
    }
    benchmark::DoNotOptimize(ComputeSummaries(ptrs, kb, SummaryOptions{}, pool));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(parsed->size()));
}
BENCHMARK(BM_SummaryComputation)
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Full scan with the interprocedural stage toggled, at 1 and 4 workers —
// quantifies the summary stage's overhead on top of BM_FullTreeScanParallel.
void BM_FullTreeScanInterprocedural(benchmark::State& state) {
  static const Corpus* corpus = new Corpus(GenerateKernelCorpus());
  ScanOptions options;
  options.interprocedural = state.range(0) != 0;
  options.jobs = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    CheckerEngine engine(KnowledgeBase::BuiltIn(), options);
    benchmark::DoNotOptimize(engine.Scan(corpus->tree));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(corpus->tree.size()));
}
BENCHMARK(BM_FullTreeScanInterprocedural)
    ->ArgsProduct({{0, 1}, {1, 4}})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Incremental rescan with the persistent cache (DESIGN.md §5.8): prime the
// cache once, then per iteration touch range(0) percent of the corpus files
// (a trailing comment — content changes, discovery facts do not, so the KB
// fingerprint stays stable and untouched files stay hot) and rescan.
// Compare against BM_FullTreeScan for the speedup (acceptance target: >= 5x
// at 0–1% change rates).
void BM_IncrementalRescan(benchmark::State& state) {
  static const Corpus* corpus = new Corpus(GenerateKernelCorpus());
  namespace stdfs = std::filesystem;
  const int pct = static_cast<int>(state.range(0));
  const std::string cache_dir =
      (stdfs::temp_directory_path() / ("refscan_bench_cache_" + std::to_string(pct))).string();
  stdfs::remove_all(cache_dir);
  ScanOptions options;
  options.cache_dir = cache_dir;
  {
    CheckerEngine engine(KnowledgeBase::BuiltIn(), options);
    benchmark::DoNotOptimize(engine.Scan(corpus->tree));  // prime
  }
  std::vector<std::string> paths;
  for (const auto& [path, file] : corpus->tree.files()) {
    paths.push_back(path);
  }
  const size_t changed = paths.size() * static_cast<size_t>(pct) / 100;
  size_t rev = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SourceTree tree;
    ++rev;
    for (size_t i = 0; i < paths.size(); ++i) {
      std::string text(corpus->tree.Find(paths[i])->text());
      if (i < changed) {
        text += "// rev " + std::to_string(rev) + "\n";
      }
      tree.Add(paths[i], std::move(text));
    }
    state.ResumeTiming();
    CheckerEngine engine(KnowledgeBase::BuiltIn(), options);
    benchmark::DoNotOptimize(engine.Scan(tree));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(paths.size()));
  stdfs::remove_all(cache_dir);
}
BENCHMARK(BM_IncrementalRescan)->Arg(0)->Arg(1)->Arg(10)->Unit(benchmark::kMillisecond);

// A warm rescan against the resident service (`refscan serve`, DESIGN.md
// §5.14): one in-process ScanServer holds the tree's artifacts in its
// MemoryStore; each iteration ships the unchanged tree over the Unix socket
// and gets the cached verdict back. Includes the full transport cost
// (encode + two frame copies + decode), so compare against
// BM_FullTreeScanParallel at the same job count for the resident win and
// against BM_IncrementalRescan/0 for the socket tax over the in-process
// warm path.
void BM_ResidentScan(benchmark::State& state) {
  static const Corpus* corpus = new Corpus(GenerateKernelCorpus());
  ServeConfig config;
  config.socket_path = "/tmp/refscan-bench-serve-" + std::to_string(::getpid()) + ".sock";
  ScanServer server(config);
  if (!server.Start()) {
    state.SkipWithError("cannot start resident server");
    return;
  }
  ScanOptions options;
  options.jobs = static_cast<size_t>(state.range(0));
  benchmark::DoNotOptimize(
      RemoteScan(corpus->tree, options, config.socket_path));  // prime the store
  for (auto _ : state) {
    benchmark::DoNotOptimize(RemoteScan(corpus->tree, options, config.socket_path));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(corpus->tree.size()));
  server.Drain();
}
BENCHMARK(BM_ResidentScan)->Arg(1)->Arg(4)->UseRealTime()->Unit(benchmark::kMillisecond);

// On-disk tree loading at 1 and 4 reader threads: the corpus is emitted to
// a temp directory once, then LoadSourceTreeFromDisk (serial walk, parallel
// pre-sized reads) slurps it back.
void BM_ParallelTreeLoad(benchmark::State& state) {
  namespace stdfs = std::filesystem;
  static const std::string* root = [] {
    const Corpus corpus = GenerateKernelCorpus();
    auto* dir = new std::string(
        (stdfs::temp_directory_path() / "refscan_bench_tree").string());
    stdfs::remove_all(*dir);
    for (const auto& [path, file] : corpus.tree.files()) {
      const stdfs::path target = stdfs::path(*dir) / path;
      stdfs::create_directories(target.parent_path());
      std::ofstream out(target, std::ios::binary);
      const std::string_view text = file.text();
      out.write(text.data(), static_cast<std::streamsize>(text.size()));
    }
    return dir;
  }();
  LoadOptions options;
  options.jobs = static_cast<size_t>(state.range(0));
  size_t files = 0;
  for (auto _ : state) {
    const SourceTree tree = LoadSourceTreeFromDisk(*root, options);
    files = tree.size();
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(files));
}
BENCHMARK(BM_ParallelTreeLoad)->Arg(1)->Arg(4)->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_MineHistory(benchmark::State& state) {
  HistoryOptions options;
  options.noise_commits = static_cast<int>(state.range(0));
  static std::map<int, History> cache;
  History& history = cache.try_emplace(options.noise_commits, GenerateHistory(options))
                         .first->second;
  const KnowledgeBase kb = KnowledgeBase::BuiltIn();
  for (auto _ : state) {
    benchmark::DoNotOptimize(MineRefcountBugs(history, kb));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(history.commits.size()));
}
BENCHMARK(BM_MineHistory)->Arg(10000)->Arg(50000)->Unit(benchmark::kMillisecond);

void BM_Word2VecEpoch(benchmark::State& state) {
  HistoryOptions options;
  options.noise_commits = 2000;
  static const History* history = new History(GenerateHistory(options));
  static const auto* sentences =
      new std::vector<std::vector<std::string>>(BuildCommitSentences(*history));
  for (auto _ : state) {
    Word2Vec model;
    EmbedOptions embed;
    embed.epochs = 1;
    model.Train(*sentences, embed);
    benchmark::DoNotOptimize(model.vocab_size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(sentences->size()));
}
BENCHMARK(BM_Word2VecEpoch)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace refscan

int main(int argc, char** argv) {
  // The build type of *this* binary, not of the benchmark library (Debian
  // ships a debug libbenchmark, so context.library_build_type lies about us).
  benchmark::AddCustomContext("refscan_build_type", REFSCAN_BUILD_TYPE);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
