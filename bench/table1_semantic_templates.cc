// Table 1 — Semantic templates for the two intro bugs (Listings 1 and 2).
// Runs the real checkers over the paper's listing code and prints the
// matched templates next to the paper's.

#include <cstdio>

#include "src/checkers/engine.h"
#include "src/checkers/templates.h"
#include "src/report/table.h"

int main() {
  using namespace refscan;

  std::printf("== Table 1: semantic templates for the intro listings ==\n\n");

  CheckerEngine engine;

  // Listing 1: the missing-refcounting bug in drivers/nvmem/core.c.
  const ScanResult listing1 = engine.ScanFileText(
      "drivers/nvmem/core.c",
      "struct nvmem_device *__nvmem_device_get(void *data)\n"
      "{\n"
      "  struct device *dev = bus_find_device(nvmem_bus_type, NULL, data, match);\n"
      "  if (!dev)\n"
      "    return ERR_PTR(-ENOENT);\n"
      "  if (probe_lock(dev) < 0)\n"
      "    return ERR_PTR(-EBUSY);\n"  // error exit without put_device
      "  return to_nvmem(dev);\n"
      "}\n");

  // Listing 2: the misplacing-refcounting bug in drivers/usb/serial/console.c.
  CheckerEngine engine2;
  const ScanResult listing2 = engine2.ScanFileText(
      "drivers/usb/serial/console.c",
      "static int usb_console_setup(struct console *co)\n"
      "{\n"
      "  struct usb_serial *serial = usb_serial_get_by_index(co->index);\n"
      "  configure(serial);\n"
      "  usb_serial_put(serial);\n"
      "  mutex_unlock(&serial->disc_mutex);\n"
      "  return 0;\n"
      "}\n");

  Table table("Semantic templates (paper Table 1 vs checker-matched)");
  table.Header({"Bug", "Paper template", "Matched template", "Checker"});
  table.Row({"Listing 1", "F_start -> S_G -> B_error -> F_end",
             listing1.reports.empty() ? "(none)" : listing1.reports[0].template_path,
             listing1.reports.empty()
                 ? "-"
                 : std::string(AntiPatternName(listing1.reports[0].anti_pattern))});
  table.Row({"Listing 2", "F_start -> S_P(p0) -> S_U.D(p0) -> F_end",
             listing2.reports.empty() ? "(none)" : listing2.reports[0].template_path,
             listing2.reports.empty()
                 ? "-"
                 : std::string(AntiPatternName(listing2.reports[0].anti_pattern))});
  std::printf("%s\n", table.Render().c_str());

  std::printf("All nine anti-pattern templates (Section 5):\n");
  for (int p = 1; p <= 9; ++p) {
    std::printf("  P%d %-20s %s\n", p, std::string(AntiPatternName(p)).c_str(),
                AntiPatternTemplate(p).c_str());
  }

  std::printf("\nReports produced from the listings:\n");
  for (const auto* result : {&listing1, &listing2}) {
    for (const BugReport& r : result->reports) {
      std::printf("  [P%d %s] %s:%u %s — %s\n", r.anti_pattern,
                  std::string(ImpactName(r.impact)).c_str(), r.file.c_str(), r.line,
                  r.function.c_str(), r.message.c_str());
    }
  }
  return 0;
}
