// Table 6 — The error-prone APIs (Appendix A): the knowledge-base catalogue
// grouped the way the paper presents it.

#include <cstdio>

#include "src/kb/kb.h"
#include "src/report/table.h"
#include "src/support/strings.h"

int main() {
  using namespace refscan;

  std::printf("== Table 6: error-prone APIs (Appendix A) ==\n\n");

  const KnowledgeBase kb = KnowledgeBase::BuiltIn();

  Table table("Error-prone API catalogue (ID = implementation deviation, H = hidden)");
  table.Header({"Group", "Bug Type", "API", "Notes"});

  for (const auto& [name, api] : kb.apis()) {
    if (api.returns_error) {
      table.Row({"ID", "Return-Error", name, "increments even on error return"});
    }
  }
  for (const auto& [name, api] : kb.apis()) {
    if (api.may_return_null) {
      table.Row({"ID", "Return-NULL", name, "returned object pointer may be NULL"});
    }
  }
  table.Separator();
  for (const auto& [name, loop] : kb.smart_loops()) {
    table.Row({"H", "Complete-Hidden", name,
               StrFormat("smartloop over %s (iterator arg %d)", loop.embedded_api.c_str(),
                         loop.iterator_arg)});
  }
  table.Separator();
  for (const auto& [name, api] : kb.apis()) {
    if (api.hidden && !api.returns_error && !api.may_return_null) {
      std::string notes = api.returns_object ? "returns acquired object" : "";
      if (api.consumed_param >= 0) {
        if (!notes.empty()) {
          notes += "; ";
        }
        notes += StrFormat("consumes parameter %d", api.consumed_param);
      }
      table.Row({"H", "Inc./Dec.-Hidden", name, notes});
    }
  }
  std::printf("%s\n", table.Render().c_str());

  size_t general = 0;
  size_t specific = 0;
  size_t embedded = 0;
  for (const auto& [name, api] : kb.apis()) {
    switch (api.category) {
      case ApiCategory::kGeneral:
        ++general;
        break;
      case ApiCategory::kSpecific:
        ++specific;
        break;
      case ApiCategory::kEmbedded:
        ++embedded;
        break;
    }
  }
  std::printf("Catalogue size: %zu APIs (%zu general, %zu specific, %zu refcounting-embedded), "
              "%zu smartloops, %zu refcounted base structures.\n",
              kb.apis().size(), general, specific, embedded, kb.smart_loops().size(),
              kb.refcounted_structs().size());
  return 0;
}
