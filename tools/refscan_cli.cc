// refscan — command-line front end.
//
//   refscan scan <dir> [--fix] [--no-discovery] [--jobs N] [--cache-dir DIR]
//                                                 scan a C tree on disk
//   refscan match <dir> "<template>" [--jobs N]   run a custom semantic template
//   refscan dump <file.c> [tokens|ast|cfg|cpg]    inspect front-end stages
//   refscan deviations <dir> [--jobs N]           find deviant refcounting APIs
//   refscan summaries <dir> [--json] [--jobs N]   interprocedural ref-delta summaries
//   refscan demo [--jobs N] [--emit <dir>]        scan the built-in synthetic kernel corpus
//
// --jobs/-j N picks the scan parallelism (0 = one thread per hardware
// thread, the default); reports are identical at every thread count.
// Exit code: number of bug reports, capped at 125 (0 = clean).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <set>
#include <string>

#include "src/checkers/engine.h"
#include "src/ipa/summary.h"
#include "src/support/threadpool.h"
#include "src/checkers/fixes.h"
#include "src/checkers/template_matcher.h"
#include "src/checkers/templates.h"
#include "src/ast/parser.h"
#include "src/corpus/generator.h"
#include "src/cpg/dump.h"
#include "src/kb/deviations.h"
#include "src/support/fs.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  refscan scan <dir> [--fix] [--json] [--no-discovery] [--patterns LIST]\n"
               "                    [--interprocedural] [--jobs N] [--cache-dir DIR] [--no-cache]\n"
               "  refscan match <dir> \"<template>\" [--jobs N]   e.g. \"F_start -> S_P(p0) "
               "-> S_D(p0) -> F_end\"\n"
               "  refscan dump <file.c> [tokens|ast|cfg|cpg]\n"
               "  refscan deviations <dir> [--jobs N]\n"
               "  refscan summaries <dir> [--json] [--jobs N]\n"
               "  refscan demo [--jobs N] [--emit <dir>]\n"
               "\n"
               "  --patterns LIST       comma-separated anti-pattern ids to check, e.g. 1,4,8\n"
               "  --interprocedural     fold bottom-up call-graph summaries into the KB\n"
               "                        before checking (alias: --ipa)\n"
               "  --jobs/-j N   scan threads (0 = all hardware threads, the default);\n"
               "                output is identical at every thread count\n"
               "  --cache-dir DIR   persistent incremental scan cache: rescans replay\n"
               "                    cached parses and reports for unchanged files;\n"
               "                    output is byte-identical to an uncached scan\n"
               "  --no-cache        ignore any --cache-dir (one-shot cold scan)\n");
  return 2;
}

// Shared flag state across the subcommands.
struct CliFlags {
  bool print_fixes = false;
  bool discovery = true;
  bool json = false;
  bool interprocedural = false;
  std::set<int> patterns = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  size_t jobs = 0;  // 0 = hardware concurrency
  std::string emit_dir;
  std::string cache_dir;
  bool no_cache = false;
};

// Parses flags from argv[first..); returns false on an unknown flag or a
// missing/garbled flag argument.
bool ParseFlags(int argc, char** argv, int first, CliFlags& flags) {
  for (int i = first; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fix") == 0) {
      flags.print_fixes = true;
    } else if (std::strcmp(argv[i], "--no-discovery") == 0) {
      flags.discovery = false;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      flags.json = true;
    } else if (std::strcmp(argv[i], "--interprocedural") == 0 ||
               std::strcmp(argv[i], "--ipa") == 0) {
      flags.interprocedural = true;
    } else if (std::strcmp(argv[i], "--patterns") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--patterns needs a comma-separated list (e.g. 1,4,8)\n");
        return false;
      }
      if (!refscan::ParsePatternList(argv[++i], flags.patterns)) {
        std::fprintf(stderr, "bad pattern list '%s': expected comma-separated ids in 1..9\n",
                     argv[i]);
        return false;
      }
    } else if (std::strcmp(argv[i], "--jobs") == 0 || std::strcmp(argv[i], "-j") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a number\n", argv[i]);
        return false;
      }
      char* end = nullptr;
      const unsigned long value = std::strtoul(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0') {
        std::fprintf(stderr, "bad thread count: %s\n", argv[i]);
        return false;
      }
      flags.jobs = static_cast<size_t>(value);
    } else if (std::strcmp(argv[i], "--cache-dir") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--cache-dir needs a directory\n");
        return false;
      }
      flags.cache_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--no-cache") == 0) {
      flags.no_cache = true;
    } else if (std::strcmp(argv[i], "--emit") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--emit needs a directory\n");
        return false;
      }
      flags.emit_dir = argv[++i];
    } else {
      return false;
    }
  }
  return true;
}

int RunScan(const refscan::SourceTree& tree, const CliFlags& flags) {
  using namespace refscan;
  ScanOptions options;
  options.discover_from_source = flags.discovery;
  options.jobs = flags.jobs;
  options.interprocedural = flags.interprocedural;
  options.enabled_patterns = flags.patterns;
  if (!flags.no_cache) {
    options.cache_dir = flags.cache_dir;
  }
  CheckerEngine engine(KnowledgeBase::BuiltIn(), options);
  const ScanResult result = engine.Scan(tree);

  if (flags.json) {
    if (!options.cache_dir.empty()) {
      // Keep stdout byte-identical between cold and warm scans: cache
      // accounting goes to stderr in JSON mode.
      std::fprintf(stderr, "cache: %zu hit(s), %zu miss(es), %zu parse skip(s)\n",
                   result.stats.cache_hits, result.stats.cache_misses,
                   result.stats.cache_parse_skips);
    }
    std::printf("%s", ReportsToJson(result.reports).c_str());
    return static_cast<int>(std::min<size_t>(result.reports.size(), 125));
  }

  std::printf("scanned %zu files, %zu functions (%zu refcounting APIs known, "
              "%zu smartloops)\n\n",
              result.stats.files, result.stats.functions, result.stats.discovered_apis,
              result.stats.discovered_smart_loops);
  if (!options.cache_dir.empty()) {
    std::printf("cache: %zu hit(s), %zu miss(es), %zu parse skip(s)\n\n",
                result.stats.cache_hits, result.stats.cache_misses,
                result.stats.cache_parse_skips);
  }

  for (const BugReport& r : result.reports) {
    std::printf("%s:%u: [P%d %s/%s] %s\n", r.file.c_str(), r.line, r.anti_pattern,
                std::string(AntiPatternName(r.anti_pattern)).c_str(),
                std::string(ImpactName(r.impact)).c_str(), r.message.c_str());
    std::printf("    function: %s   template: %s\n", r.function.c_str(),
                r.template_path.c_str());
    if (flags.print_fixes) {
      const SourceFile* file = tree.Find(r.file);
      if (file != nullptr) {
        const FixSuggestion fix = SuggestFix(r, *file);
        if (fix.available) {
          std::printf("    suggested patch: %s\n%s", fix.summary.c_str(), fix.diff.c_str());
        } else {
          std::printf("    (no mechanical fix: %s)\n", fix.summary.c_str());
        }
      }
    }
    std::printf("\n");
  }
  std::printf("%zu report(s).\n", result.reports.size());
  return static_cast<int>(std::min<size_t>(result.reports.size(), 125));
}

// Writes every corpus file under `dir` so an on-disk `refscan scan` (or any
// external tool) can chew on the synthetic tree. Returns false on I/O error.
bool EmitTree(const refscan::SourceTree& tree, const std::string& dir) {
  namespace stdfs = std::filesystem;
  std::error_code ec;
  for (const auto& [path, file] : tree.files()) {
    const stdfs::path target = stdfs::path(dir) / path;
    stdfs::create_directories(target.parent_path(), ec);
    if (ec) {
      std::fprintf(stderr, "cannot create %s: %s\n", target.parent_path().c_str(),
                   ec.message().c_str());
      return false;
    }
    std::FILE* out = std::fopen(target.c_str(), "wb");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", target.c_str());
      return false;
    }
    const std::string_view text = file.text();
    std::fwrite(text.data(), 1, text.size(), out);
    std::fclose(out);
  }
  std::printf("emitted %zu files under %s\n", tree.size(), dir.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace refscan;

  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];

  if (command == "demo") {
    CliFlags flags;
    if (!ParseFlags(argc, argv, 2, flags)) {
      return Usage();
    }
    std::printf("generating the synthetic kernel corpus and scanning it...\n\n");
    const Corpus corpus = GenerateKernelCorpus();
    if (!flags.emit_dir.empty() && !EmitTree(corpus.tree, flags.emit_dir)) {
      return 2;
    }
    return RunScan(corpus.tree, flags) > 0 ? 1 : 0;
  }

  if (command == "match") {
    if (argc < 4) {
      return Usage();
    }
    CliFlags flags;
    if (!ParseFlags(argc, argv, 4, flags)) {
      return Usage();
    }
    const auto tmpl = ParseTemplate(argv[3]);
    if (!tmpl.has_value()) {
      std::fprintf(stderr, "cannot parse template: %s\n", argv[3]);
      return 2;
    }
    LoadOptions load_options;
    load_options.jobs = flags.jobs;
    const SourceTree tree = LoadSourceTreeFromDisk(argv[2], load_options);
    if (tree.size() == 0) {
      std::fprintf(stderr, "no C sources found under %s\n", argv[2]);
      return 2;
    }
    ScanOptions options;
    options.jobs = flags.jobs;
    const auto reports = RunTemplateChecker(*tmpl, tree, KnowledgeBase::BuiltIn(), options);
    for (const BugReport& r : reports) {
      std::printf("%s:%u: [template] %s in %s() (object '%s')\n", r.file.c_str(), r.line,
                  r.template_path.c_str(), r.function.c_str(), r.object.c_str());
    }
    std::printf("%zu match(es).\n", reports.size());
    return static_cast<int>(std::min<size_t>(reports.size(), 125));
  }

  if (command == "dump") {
    if (argc < 3) {
      return Usage();
    }
    std::FILE* f = std::fopen(argv[2], "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", argv[2]);
      return 2;
    }
    std::string text;
    char buffer[4096];
    size_t n;
    while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
      text.append(buffer, n);
    }
    std::fclose(f);
    const SourceFile file(argv[2], std::move(text));
    const std::string stage = argc > 3 ? argv[3] : "cpg";
    if (stage == "tokens") {
      std::printf("%s", DumpTokens(file).c_str());
      return 0;
    }
    const TranslationUnit unit = ParseFile(file);
    if (stage == "ast") {
      std::printf("%s", DumpAst(unit).c_str());
      return 0;
    }
    KnowledgeBase kb = KnowledgeBase::BuiltIn();
    kb.DiscoverFromUnit(unit);
    kb.DiscoverFromUnit(unit);
    for (const FunctionDef& fn : unit.functions) {
      const Cfg cfg = BuildCfg(fn);
      if (stage == "cfg") {
        std::printf("%s\n", DumpCfg(cfg).c_str());
        continue;
      }
      const Cpg cpg = BuildCpg(cfg, kb);
      std::printf("== %s ==\n%s\n", fn.name.c_str(), DumpCpg(cpg).c_str());
    }
    return 0;
  }

  if (command == "summaries") {
    if (argc < 3) {
      return Usage();
    }
    CliFlags flags;
    if (!ParseFlags(argc, argv, 3, flags)) {
      return Usage();
    }
    std::vector<std::string> errors;
    LoadOptions load_options;
    load_options.jobs = flags.jobs;
    const SourceTree tree = LoadSourceTreeFromDisk(argv[2], load_options, &errors);
    for (const std::string& error : errors) {
      std::fprintf(stderr, "warning: %s\n", error.c_str());
    }
    if (tree.size() == 0) {
      std::fprintf(stderr, "no C sources found under %s\n", argv[2]);
      return 2;
    }
    // Same front half as a scan: parse everything, run the two-round
    // discovery pass, then compute and dump the summaries.
    std::vector<const SourceFile*> files;
    for (const auto& [path, file] : tree.files()) {
      files.push_back(&file);
    }
    ThreadPool pool(flags.jobs);
    const std::vector<TranslationUnit> units =
        ParallelMap(pool, files.size(), [&](size_t i) { return ParseFile(*files[i]); });
    KnowledgeBase kb = KnowledgeBase::BuiltIn();
    for (int round = 0; round < 2; ++round) {
      for (const TranslationUnit& unit : units) {
        kb.DiscoverFromUnit(unit);
      }
    }
    std::vector<const TranslationUnit*> unit_ptrs;
    for (const TranslationUnit& unit : units) {
      unit_ptrs.push_back(&unit);
    }
    const SummaryResult result = ComputeSummaries(unit_ptrs, kb, SummaryOptions{}, pool);
    std::printf("%s", (flags.json ? SummariesToJson(result) : SummariesToText(result)).c_str());
    return 0;
  }

  if (command == "scan" || command == "deviations") {
    if (argc < 3) {
      return Usage();
    }
    CliFlags flags;
    if (!ParseFlags(argc, argv, 3, flags)) {
      return Usage();
    }
    std::vector<std::string> errors;
    LoadOptions load_options;
    load_options.jobs = flags.jobs;
    const SourceTree tree = LoadSourceTreeFromDisk(argv[2], load_options, &errors);
    for (const std::string& error : errors) {
      std::fprintf(stderr, "warning: %s\n", error.c_str());
    }
    if (tree.size() == 0) {
      std::fprintf(stderr, "no C sources found under %s\n", argv[2]);
      return 2;
    }
    if (command == "deviations") {
      const auto reports = DetectDeviations(tree, KnowledgeBase::BuiltIn(), flags.jobs);
      for (const DeviationReport& r : reports) {
        std::printf("%s:%u: [%s%s] %s\n", r.file.c_str(), r.line,
                    std::string(DeviationKindName(r.kind)).c_str(), r.hidden ? ", hidden" : "",
                    r.note.c_str());
      }
      std::printf("%zu deviant API(s).\n", reports.size());
      return reports.empty() ? 0 : 1;
    }
    return RunScan(tree, flags);
  }

  return Usage();
}
