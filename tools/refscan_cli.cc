// refscan — command-line front end.
//
//   refscan scan <dir> [--fix] [--no-discovery] [--jobs N] [--cache-dir DIR]
//                                                 scan a C tree on disk
//   refscan match <dir> "<template>" [--jobs N]   run a custom semantic template
//   refscan dump <file.c> [tokens|ast|cfg|cpg]    inspect front-end stages
//   refscan deviations <dir> [--jobs N]           find deviant refcounting APIs
//   refscan summaries <dir> [--json] [--jobs N]   interprocedural ref-delta summaries
//   refscan stats <dir> [--json] [--jobs N]       scan and print only the stats table
//   refscan demo [--jobs N] [--emit <dir>]        scan the built-in synthetic kernel corpus
//
// --jobs/-j N picks the scan parallelism (0 = one thread per hardware
// thread, the default); reports are identical at every thread count.
//
// Exit codes are disjoint (ScanExitCode, DESIGN.md §5.9): 0 = clean scan,
// 10 = completed healthy with >= 1 report, 2 = completed degraded (some
// files quarantined — see the `## Degraded files` section / `degraded`
// JSON field; takes precedence over reports), 1 = hard failure (aborted
// scan, no sources, internal error), 64 = usage error (bad flags).
// `refscan stats` maps 10 back to 0 — reports are not what it asks about.
//
// Observability (src/support/telemetry.h): `--trace-out FILE` writes a
// Chrome trace-event JSON of the run (stage + per-file spans; load it in
// chrome://tracing or https://ui.perfetto.dev); `--metrics-out FILE`
// writes the run's counters in Prometheus text exposition format.

#include <csignal>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include <atomic>
#include <thread>

#include "src/cache/store.h"
#include "src/checkers/engine.h"
#include "src/checkers/sharded.h"
#include "src/ipa/summary.h"
#include "src/serve/client.h"
#include "src/serve/protocol.h"
#include "src/serve/serve.h"
#include "src/serve/watch.h"
#include "src/support/threadpool.h"
#include "src/checkers/fixes.h"
#include "src/checkers/template_matcher.h"
#include "src/checkers/templates.h"
#include "src/ast/parser.h"
#include "src/corpus/generator.h"
#include "src/cpg/dump.h"
#include "src/kb/deviations.h"
#include "src/support/faultinject.h"
#include "src/support/fs.h"
#include "src/support/telemetry.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  refscan scan <dir> [--fix] [--json] [--no-discovery] [--patterns LIST]\n"
               "                    [--dialect NAME] [--interprocedural] [--jobs N]\n"
               "                    [--cache-dir DIR] [--cache-server PATH] [--no-cache]\n"
               "                    [--workers N] [--streaming] [--mmap]\n"
               "                    [--stats] [--faults SPEC] [--file-timeout-ms N]\n"
               "                    [--max-failure-ratio R] [--trace-out FILE] [--metrics-out FILE]\n"
               "  refscan match <dir> \"<template>\" [--jobs N]   e.g. \"F_start -> S_P(p0) "
               "-> S_D(p0) -> F_end\"\n"
               "  refscan dump <file.c> [tokens|ast|cfg|cpg]\n"
               "  refscan deviations <dir> [--jobs N]\n"
               "  refscan summaries <dir> [--json] [--jobs N]\n"
               "  refscan stats <dir> [--json] [--jobs N]   scan, print only the stats table\n"
               "  refscan demo [--jobs N] [--emit <dir>] [--kernelish N]\n"
               "  refscan cached <dir> [--socket PATH]      serve <dir> as a shared\n"
               "                                            content-addressed cache\n"
               "  refscan serve <socket> [--watch TREE] [--sessions N] [--max-pending N]\n"
               "                [--request-timeout-ms N] [--drain-timeout-ms N] [--poll-ms N]\n"
               "                [--jobs N]                  resident scan service: keeps the\n"
               "                                            artifact store warm and answers\n"
               "                                            scan/stats/summaries/health\n"
               "                                            requests; SIGTERM drains\n"
               "  refscan health <socket> [--stats]         ping a serve daemon (--stats\n"
               "                                            prints its counters JSON)\n"
               "  refscan cache gc <dir> --max-bytes N      evict LRU cache objects over N\n"
               "  refscan worker --socket PATH --id N       (internal) shard worker process\n"
               "\n"
               "  --patterns LIST       comma-separated anti-pattern ids in 1..12, e.g. 1,4,10\n"
               "                        (P10-P12 are opt-in; the default is 1..9)\n"
               "  --dialect NAME        merge a userspace refcount dialect catalogue into the\n"
               "                        KB before scanning (repeatable); known: glib, uacpi\n"
               "  --interprocedural     fold bottom-up call-graph summaries into the KB\n"
               "                        before checking (alias: --ipa)\n"
               "  --jobs/-j N   scan threads (0 = all hardware threads, the default);\n"
               "                output is identical at every thread count\n"
               "  --cache-dir DIR   persistent incremental scan cache: rescans replay\n"
               "                    cached parses and reports for unchanged files;\n"
               "                    output is byte-identical to an uncached scan\n"
               "  --no-cache        ignore any --cache-dir / --cache-server (cold scan)\n"
               "  --cache-server PATH   Unix socket of a `refscan cached` server; shares one\n"
               "                        warm artifact store across processes (takes\n"
               "                        precedence over --cache-dir)\n"
               "  --workers N       shard the scan across N worker subprocesses; output is\n"
               "                    byte-identical to --workers 0 at any N (0 = in-process,\n"
               "                    the default; incompatible with --interprocedural)\n"
               "  --streaming       bounded-memory unit lifecycle for multi-MLOC trees: each\n"
               "                    file's AST is dropped after stage 1 and re-parsed just in\n"
               "                    time in stage 3, so at most --jobs ASTs coexist; output is\n"
               "                    byte-identical (ignored with --interprocedural)\n"
               "  --mmap            mmap source files instead of reading them onto the heap;\n"
               "                    the pages stay evictable, so peak RSS tracks the working\n"
               "                    set rather than the tree size\n"
               "  --kernelish N     (demo) append N generated kernel-realism modules per\n"
               "                    subsystem: attribute/asm/stmt-expr/CRLF/splice-heavy C\n"
               "                    plus a deliberately unparseable function per module\n"
               "  --remote SOCKET   run the scan on a `refscan serve` daemon (warm resident\n"
               "                    store); output is byte-identical to a local scan, and an\n"
               "                    unreachable server falls back to scanning locally\n"
               "  --stats           print fault-isolation and cache counters (text and JSON)\n"
               "  --faults SPEC     arm the deterministic fault-injection registry for this\n"
               "                    run, e.g. 'parser.parse:file=*.broken.c' — see\n"
               "                    src/support/faultinject.h (env: REFSCAN_FAULTS)\n"
               "  --file-timeout-ms N   per-file wall-clock budget; overruns quarantine the\n"
               "                        file instead of stalling the scan (0 = off)\n"
               "  --max-failure-ratio R  abort when more than this fraction of files fail\n"
               "                         (0 = complete degraded, the default)\n"
               "  --trace-out FILE      write a Chrome trace-event JSON of the run (open in\n"
               "                        chrome://tracing or ui.perfetto.dev)\n"
               "  --metrics-out FILE    write the run's counters in Prometheus text format\n"
               "\n"
               "exit codes: 0 clean, 10 reports found, 2 degraded, 1 hard failure, 64 usage\n");
  return refscan::kExitUsage;
}

// Shared flag state across the subcommands.
struct CliFlags {
  bool print_fixes = false;
  bool discovery = true;
  bool json = false;
  bool interprocedural = false;
  std::set<int> patterns = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<std::string> dialects;
  size_t jobs = 0;  // 0 = hardware concurrency
  std::string emit_dir;
  std::string cache_dir;
  std::string cache_server;
  size_t workers = 0;   // 0 = in-process scan
  std::string remote;   // serve daemon socket; empty = scan locally
  bool streaming = false;
  bool use_mmap = false;
  size_t kernelish = 0;  // demo: kernel-realism modules per subsystem
  bool no_cache = false;
  bool stats = false;
  std::string fault_spec;
  uint32_t file_timeout_ms = 0;
  double max_failure_ratio = 0.0;
  std::string trace_out;
  std::string metrics_out;
  bool stats_only = false;  // `refscan stats`: suppress the report listing
};

// Parses flags from argv[first..); returns false on an unknown flag or a
// missing/garbled flag argument.
bool ParseFlags(int argc, char** argv, int first, CliFlags& flags) {
  for (int i = first; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fix") == 0) {
      flags.print_fixes = true;
    } else if (std::strcmp(argv[i], "--no-discovery") == 0) {
      flags.discovery = false;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      flags.json = true;
    } else if (std::strcmp(argv[i], "--interprocedural") == 0 ||
               std::strcmp(argv[i], "--ipa") == 0) {
      flags.interprocedural = true;
    } else if (std::strcmp(argv[i], "--patterns") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--patterns needs a comma-separated list (e.g. 1,4,8)\n");
        return false;
      }
      if (!refscan::ParsePatternList(argv[++i], flags.patterns)) {
        std::fprintf(stderr, "bad pattern list '%s': expected comma-separated ids in 1..12\n",
                     argv[i]);
        return false;
      }
    } else if (std::strcmp(argv[i], "--dialect") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--dialect needs a name (known: ");
        const auto& known = refscan::KnownDialects();
        for (size_t k = 0; k < known.size(); ++k) {
          std::fprintf(stderr, "%s%s", k == 0 ? "" : ", ", known[k].c_str());
        }
        std::fprintf(stderr, ")\n");
        return false;
      }
      const std::string name = argv[++i];
      const auto& known = refscan::KnownDialects();
      if (std::find(known.begin(), known.end(), name) == known.end()) {
        std::fprintf(stderr, "unknown dialect '%s' (known:", name.c_str());
        for (const std::string& k : known) {
          std::fprintf(stderr, " %s", k.c_str());
        }
        std::fprintf(stderr, ")\n");
        return false;
      }
      flags.dialects.push_back(name);
    } else if (std::strcmp(argv[i], "--jobs") == 0 || std::strcmp(argv[i], "-j") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a number\n", argv[i]);
        return false;
      }
      char* end = nullptr;
      const unsigned long value = std::strtoul(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0') {
        std::fprintf(stderr, "bad thread count: %s\n", argv[i]);
        return false;
      }
      flags.jobs = static_cast<size_t>(value);
    } else if (std::strcmp(argv[i], "--cache-dir") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--cache-dir needs a directory\n");
        return false;
      }
      flags.cache_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--cache-server") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--cache-server needs a socket path\n");
        return false;
      }
      flags.cache_server = argv[++i];
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--workers needs a number\n");
        return false;
      }
      char* end = nullptr;
      const unsigned long value = std::strtoul(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0') {
        std::fprintf(stderr, "bad worker count: %s\n", argv[i]);
        return false;
      }
      flags.workers = static_cast<size_t>(value);
    } else if (std::strcmp(argv[i], "--remote") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--remote needs a socket path\n");
        return false;
      }
      flags.remote = argv[++i];
    } else if (std::strcmp(argv[i], "--streaming") == 0) {
      flags.streaming = true;
    } else if (std::strcmp(argv[i], "--mmap") == 0) {
      flags.use_mmap = true;
    } else if (std::strcmp(argv[i], "--kernelish") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--kernelish needs a number\n");
        return false;
      }
      char* end = nullptr;
      const unsigned long value = std::strtoul(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0') {
        std::fprintf(stderr, "bad module count: %s\n", argv[i]);
        return false;
      }
      flags.kernelish = static_cast<size_t>(value);
    } else if (std::strcmp(argv[i], "--no-cache") == 0) {
      flags.no_cache = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      flags.stats = true;
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--faults needs a spec (see src/support/faultinject.h)\n");
        return false;
      }
      flags.fault_spec = argv[++i];
    } else if (std::strcmp(argv[i], "--file-timeout-ms") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--file-timeout-ms needs a number\n");
        return false;
      }
      char* end = nullptr;
      const unsigned long value = std::strtoul(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0') {
        std::fprintf(stderr, "bad timeout: %s\n", argv[i]);
        return false;
      }
      flags.file_timeout_ms = static_cast<uint32_t>(value);
    } else if (std::strcmp(argv[i], "--max-failure-ratio") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--max-failure-ratio needs a number in (0, 1]\n");
        return false;
      }
      char* end = nullptr;
      const double value = std::strtod(argv[++i], &end);
      if (end == nullptr || *end != '\0' || value < 0.0 || value > 1.0) {
        std::fprintf(stderr, "bad failure ratio: %s\n", argv[i]);
        return false;
      }
      flags.max_failure_ratio = value;
    } else if (std::strcmp(argv[i], "--trace-out") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--trace-out needs a file path\n");
        return false;
      }
      flags.trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--metrics-out needs a file path\n");
        return false;
      }
      flags.metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--emit") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--emit needs a directory\n");
        return false;
      }
      flags.emit_dir = argv[++i];
    } else {
      return false;
    }
  }
  return true;
}

// Converts the tree loader's structured failures into quarantine entries
// (stage "load"), merges them with the engine's, and keeps the whole list
// deterministically ordered: by path, with whole-tree entries ("<tree>")
// last.
std::vector<refscan::FileFailure> MergeFailures(
    const std::vector<refscan::LoadFailure>& load_failures,
    std::vector<refscan::FileFailure> engine_failures) {
  using namespace refscan;
  std::vector<FileFailure> all;
  all.reserve(load_failures.size() + engine_failures.size());
  for (const LoadFailure& lf : load_failures) {
    FileFailure f;
    f.path = lf.path;
    f.stage = FailureStage::kLoad;
    f.kind = FailureKind::kIo;
    f.what = lf.what;
    f.retries = lf.retries;
    all.push_back(std::move(f));
  }
  for (FileFailure& f : engine_failures) {
    all.push_back(std::move(f));
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const FileFailure& a, const FileFailure& b) {
                     const bool a_tree = a.path == "<tree>";
                     const bool b_tree = b.path == "<tree>";
                     if (a_tree != b_tree) {
                       return b_tree;  // whole-tree entries sort last
                     }
                     return a.path < b.path;
                   });
  return all;
}

int RunScan(const refscan::SourceTree& tree, const CliFlags& flags,
            const std::vector<refscan::LoadFailure>& load_failures = {},
            const refscan::LoadStats& load_stats = {}) {
  using namespace refscan;
  ScanOptions options;
  options.discover_from_source = flags.discovery;
  options.jobs = flags.jobs;
  options.interprocedural = flags.interprocedural;
  options.enabled_patterns = flags.patterns;
  options.dialects = flags.dialects;
  options.file_timeout_ms = flags.file_timeout_ms;
  options.max_failure_ratio = flags.max_failure_ratio;
  options.streaming = flags.streaming;
  if (!flags.no_cache) {
    options.cache_dir = flags.cache_dir;
    options.cache_server = flags.cache_server;
  }

  size_t workers = flags.workers;
  if (workers > 0 && flags.interprocedural) {
    // Stage 2.5 is a whole-tree pass over every unit; it cannot shard.
    std::fprintf(stderr, "refscan: --workers is incompatible with --interprocedural; "
                         "running in-process\n");
    workers = 0;
  }
  ScanResult result;
  bool have_result = false;
  if (!flags.remote.empty()) {
    if (workers > 0) {
      std::fprintf(stderr, "refscan: --workers is ignored with --remote (the server picks "
                           "its own parallelism from --jobs)\n");
      workers = 0;
    }
    std::string note;
    if (std::optional<ScanResult> remote = RemoteScan(tree, options, flags.remote, {}, &note)) {
      result = std::move(*remote);
      have_result = true;
    } else {
      // Unreachable after the whole backoff budget: the local fallback
      // produces byte-identical stdout, so availability costs time, never
      // output.
      std::fprintf(stderr, "refscan: serve daemon unreachable (%s); scanning locally\n",
                   note.c_str());
    }
  }
  if (have_result) {
    // remote result already in hand
  } else if (workers > 0) {
    // The worker subprocesses re-exec this binary; they inherit
    // REFSCAN_FAULTS from the environment, and a --faults spec travels in
    // the options so worker-side sites fire either way.
    ShardedScanConfig config;
    config.workers = workers;
    config.worker_cmd = "/proc/self/exe";
    ScanOptions sharded_options = options;
    sharded_options.fault_spec = flags.fault_spec;
    result = ShardedScan(tree, sharded_options, config);
  } else {
    CheckerEngine engine(KnowledgeBase::BuiltIn(), options);
    result = engine.Scan(tree);
  }

  result.failures = MergeFailures(load_failures, std::move(result.failures));
  result.stats.files_quarantined += load_failures.size();
  // Loader retry accounting comes from LoadStats, not from counting retries
  // in the failure list: a retried-then-SUCCEEDED read produces no
  // LoadFailure, so the old count_if undercounted. Same semantics as the
  // engine's files_retried — retried != degraded, only quarantined files
  // appear in the degraded list.
  result.stats.files_retried += load_stats.files_retried;

  if (result.aborted) {
    std::fprintf(stderr, "scan aborted: %s\n", result.abort_reason.c_str());
    if (flags.json) {
      std::printf("%s", ScanResultToJson(result, flags.stats).c_str());
    }
    return kExitHardFailure;
  }

  const int exit_code = ScanExitCodeFor(result);

  const bool cache_on = !options.cache_dir.empty() || !options.cache_server.empty();
  if (flags.json) {
    if (cache_on) {
      // Keep stdout byte-identical between cold and warm scans: cache
      // accounting goes to stderr in JSON mode.
      std::fprintf(stderr, "cache: %zu hit(s), %zu miss(es), %zu parse skip(s)\n",
                   result.stats.cache_hits, result.stats.cache_misses,
                   result.stats.cache_parse_skips);
    }
    std::printf("%s", ScanResultToJson(result, flags.stats).c_str());
    return exit_code;
  }

  std::printf("scanned %zu files, %zu functions (%zu refcounting APIs known, "
              "%zu smartloops)\n\n",
              result.stats.files, result.stats.functions, result.stats.discovered_apis,
              result.stats.discovered_smart_loops);
  if (cache_on) {
    std::printf("cache: %zu hit(s), %zu miss(es), %zu parse skip(s)\n\n",
                result.stats.cache_hits, result.stats.cache_misses,
                result.stats.cache_parse_skips);
  }

  if (!flags.stats_only) {
    for (const BugReport& r : result.reports) {
      std::printf("%s:%u: [P%d %s/%s] %s\n", r.file.c_str(), r.line, r.anti_pattern,
                  std::string(AntiPatternName(r.anti_pattern)).c_str(),
                  std::string(ImpactName(r.impact)).c_str(), r.message.c_str());
      std::printf("    function: %s   template: %s\n", r.function.c_str(),
                  r.template_path.c_str());
      if (flags.print_fixes) {
        const SourceFile* file = tree.Find(r.file);
        if (file != nullptr) {
          const FixSuggestion fix = SuggestFix(r, *file);
          if (fix.available) {
            std::printf("    suggested patch: %s\n%s", fix.summary.c_str(), fix.diff.c_str());
          } else {
            std::printf("    (no mechanical fix: %s)\n", fix.summary.c_str());
          }
        }
      }
      std::printf("\n");
    }
  }
  std::printf("%zu report(s).\n", result.reports.size());

  if (!result.failures.empty()) {
    std::printf("\n## Degraded files\n\n");
    for (const FileFailure& f : result.failures) {
      std::printf("%s: %s failure (%s): %s", f.path.c_str(),
                  std::string(FailureStageName(f.stage)).c_str(),
                  std::string(FailureKindName(f.kind)).c_str(), f.what.c_str());
      if (f.retries > 0) {
        std::printf(" [after %d retry]", f.retries);
      }
      std::printf("\n");
    }
    std::printf("\n%zu file(s) quarantined; the reports above cover the healthy remainder.\n",
                result.failures.size());
  }

  if (!result.degraded_functions.empty()) {
    std::printf("\n## Degraded functions\n\n");
    for (const DegradedFunctionReport& d : result.degraded_functions) {
      std::printf("%s:%u: %s(): %s\n", d.file.c_str(), d.line, d.function.c_str(),
                  d.what.c_str());
    }
    std::printf("\n%zu function(s) quarantined; sibling functions in the same files were "
                "scanned normally.\n",
                result.degraded_functions.size());
  }

  if (flags.stats) {
    // Driven by the same field table as the JSON stats object, so the text
    // view can never silently miss a ScanStats field either.
    std::printf("\nstats:\n");
    for (const ScanStatsField& f : ScanStatsFields()) {
      std::printf("  %-22s %zu\n", f.json_key, result.stats.*f.member);
    }
  }
  return exit_code;
}

// Writes `text` to `path` (for --trace-out / --metrics-out).
bool WriteTextFile(const std::string& path, const std::string& text) {
  std::FILE* out = std::fopen(path.c_str(), "wb");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(text.data(), 1, text.size(), out);
  std::fclose(out);
  return true;
}

// Writes every corpus file under `dir` so an on-disk `refscan scan` (or any
// external tool) can chew on the synthetic tree. Returns false on I/O error.
bool EmitTree(const refscan::SourceTree& tree, const std::string& dir) {
  namespace stdfs = std::filesystem;
  std::error_code ec;
  for (const auto& [path, file] : tree.files()) {
    const stdfs::path target = stdfs::path(dir) / path;
    stdfs::create_directories(target.parent_path(), ec);
    if (ec) {
      std::fprintf(stderr, "cannot create %s: %s\n", target.parent_path().c_str(),
                   ec.message().c_str());
      return false;
    }
    std::FILE* out = std::fopen(target.c_str(), "wb");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", target.c_str());
      return false;
    }
    const std::string_view text = file.text();
    std::fwrite(text.data(), 1, text.size(), out);
    std::fclose(out);
  }
  std::printf("emitted %zu files under %s\n", tree.size(), dir.c_str());
  return true;
}

int RealMain(int argc, char** argv) {
  using namespace refscan;

  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];

  if (command == "demo") {
    CliFlags flags;
    if (!ParseFlags(argc, argv, 2, flags)) {
      return Usage();
    }
    std::printf("generating the synthetic kernel corpus and scanning it...\n\n");
    CorpusOptions corpus_options;
    corpus_options.kernelish_modules = static_cast<int>(flags.kernelish);
    const Corpus corpus = GenerateKernelCorpus(corpus_options);
    if (!flags.emit_dir.empty() && !EmitTree(corpus.tree, flags.emit_dir)) {
      return kExitHardFailure;
    }
    // The corpus is a bug corpus — finding reports is the expected outcome,
    // so only a degraded or failed scan is an error here. The kernelish
    // extension plants deliberately unparseable functions, so with it a
    // degraded (function-quarantine) exit is the expected outcome too.
    const int rc = RunScan(corpus.tree, flags);
    if (rc == kExitHardFailure) {
      return 1;
    }
    return (rc == kExitDegraded && flags.kernelish == 0) ? 1 : 0;
  }

  if (command == "worker") {
    // Internal: spawned by `scan --workers N`. Not part of the documented
    // surface, but inert if invoked by hand (it just waits for a
    // coordinator that never comes, then errors out).
    std::string socket;
    int id = 0;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) {
        socket = argv[++i];
      } else if (std::strcmp(argv[i], "--id") == 0 && i + 1 < argc) {
        id = std::atoi(argv[++i]);
      } else {
        return Usage();
      }
    }
    if (socket.empty()) {
      return Usage();
    }
    return RunShardWorker(socket, id);
  }

  if (command == "cached") {
    if (argc < 3) {
      return Usage();
    }
    const std::string dir = argv[2];
    std::string socket = dir + "/cached.sock";
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) {
        socket = argv[++i];
      } else {
        return Usage();
      }
    }
    // Foreground until SIGINT/SIGTERM; the accept loop runs on its own
    // thread. sigwait (not a handler) keeps shutdown on the main thread;
    // blocking BEFORE Start() means no spawned thread can catch the signal
    // with its default (fatal) action.
    sigset_t set;
    sigemptyset(&set);
    sigaddset(&set, SIGINT);
    sigaddset(&set, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &set, nullptr);
    CacheServer server(dir, socket);
    std::string error;
    if (!server.Start(&error)) {
      std::fprintf(stderr, "refscan cached: %s\n", error.c_str());
      return kExitHardFailure;
    }
    std::printf("refscan cached: serving %s on %s\n", dir.c_str(), socket.c_str());
    std::fflush(stdout);
    int sig = 0;
    sigwait(&set, &sig);
    // Graceful drain (shared semantics with `refscan serve`): requests
    // already received finish and flush; only a hung connection forces the
    // hard-shutdown escalation.
    server.Drain();
    std::printf("refscan cached: %llu get(s), %llu hit(s), %llu put(s)\n",
                static_cast<unsigned long long>(server.gets()),
                static_cast<unsigned long long>(server.hits()),
                static_cast<unsigned long long>(server.puts()));
    return 0;
  }

  if (command == "serve") {
    if (argc < 3) {
      return Usage();
    }
    ServeConfig config;
    config.socket_path = argv[2];
    std::string watch_dir;
    uint32_t poll_ms = 500;
    size_t jobs = 0;
    for (int i = 3; i < argc; ++i) {
      const auto number = [&](unsigned long& out) {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "%s needs a number\n", argv[i]);
          return false;
        }
        char* end = nullptr;
        out = std::strtoul(argv[++i], &end, 10);
        if (end == nullptr || *end != '\0') {
          std::fprintf(stderr, "bad number: %s\n", argv[i]);
          return false;
        }
        return true;
      };
      unsigned long value = 0;
      if (std::strcmp(argv[i], "--watch") == 0 && i + 1 < argc) {
        watch_dir = argv[++i];
      } else if (std::strcmp(argv[i], "--sessions") == 0) {
        if (!number(value)) {
          return Usage();
        }
        config.sessions = static_cast<size_t>(value);
      } else if (std::strcmp(argv[i], "--max-pending") == 0) {
        if (!number(value)) {
          return Usage();
        }
        config.max_pending = static_cast<size_t>(value);
      } else if (std::strcmp(argv[i], "--request-timeout-ms") == 0) {
        if (!number(value)) {
          return Usage();
        }
        config.request_timeout_ms = static_cast<uint32_t>(value);
      } else if (std::strcmp(argv[i], "--drain-timeout-ms") == 0) {
        if (!number(value)) {
          return Usage();
        }
        config.drain_timeout_ms = static_cast<uint32_t>(value);
      } else if (std::strcmp(argv[i], "--poll-ms") == 0) {
        if (!number(value)) {
          return Usage();
        }
        poll_ms = static_cast<uint32_t>(value);
      } else if (std::strcmp(argv[i], "--jobs") == 0 || std::strcmp(argv[i], "-j") == 0) {
        if (!number(value)) {
          return Usage();
        }
        jobs = static_cast<size_t>(value);
      } else {
        return Usage();
      }
    }
    // Block the shutdown signals BEFORE Start() spawns any thread: every
    // thread inherits the mask, so sigwait on the main thread is the one
    // consumer and SIGTERM can never hit a worker thread's default action.
    sigset_t set;
    sigemptyset(&set);
    sigaddset(&set, SIGINT);
    sigaddset(&set, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &set, nullptr);
    ScanServer server(config);
    std::string error;
    if (!server.Start(&error)) {
      std::fprintf(stderr, "refscan serve: %s\n", error.c_str());
      return kExitHardFailure;
    }
    std::printf("refscan serve: listening on %s\n", config.socket_path.c_str());
    std::fflush(stdout);
    std::atomic<bool> watch_stop{false};
    std::thread watch_thread;
    if (!watch_dir.empty()) {
      WatchConfig watch;
      watch.tree_dir = watch_dir;
      watch.poll_ms = poll_ms;
      ScanOptions watch_options;
      watch_options.jobs = jobs;
      watch_thread = std::thread([watch, watch_options, &server, &watch_stop] {
        RunWatchLoop(watch, watch_options, server.store(), watch_stop, stdout);
      });
    }
    int sig = 0;
    sigwait(&set, &sig);
    watch_stop.store(true, std::memory_order_relaxed);
    if (watch_thread.joinable()) {
      watch_thread.join();
    }
    const bool clean = server.Drain();
    const ScanServer::Counters c = server.counters();
    std::printf("refscan serve: drained%s; %llu request(s), %llu scan(s), %llu shed, "
                "%llu faulted, %llu timed out\n",
                clean ? "" : " (escalated)", static_cast<unsigned long long>(c.requests),
                static_cast<unsigned long long>(c.scans), static_cast<unsigned long long>(c.shed),
                static_cast<unsigned long long>(c.faulted),
                static_cast<unsigned long long>(c.timed_out));
    return clean ? 0 : kExitHardFailure;
  }

  if (command == "health") {
    if (argc < 3) {
      return Usage();
    }
    bool want_stats = false;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--stats") == 0) {
        want_stats = true;
      } else {
        return Usage();
      }
    }
    std::string reply;
    std::string error;
    const uint8_t type = want_stats ? kServeStatsReq : kServeHealthReq;
    if (!RemoteRequestText(argv[2], type, "", reply, &error)) {
      std::fprintf(stderr, "refscan health: %s\n", error.c_str());
      return kExitHardFailure;
    }
    std::printf("%s%s", reply.c_str(), reply.ends_with('\n') ? "" : "\n");
    return 0;
  }

  if (command == "cache") {
    if (argc < 4 || std::strcmp(argv[2], "gc") != 0) {
      return Usage();
    }
    const std::string dir = argv[3];
    uint64_t max_bytes = 0;
    bool have_max = false;
    for (int i = 4; i < argc; ++i) {
      if (std::strcmp(argv[i], "--max-bytes") == 0 && i + 1 < argc) {
        char* end = nullptr;
        max_bytes = std::strtoull(argv[++i], &end, 10);
        if (end == nullptr || *end != '\0') {
          std::fprintf(stderr, "bad byte count: %s\n", argv[i]);
          return Usage();
        }
        have_max = true;
      } else {
        return Usage();
      }
    }
    if (!have_max) {
      std::fprintf(stderr, "cache gc needs --max-bytes N\n");
      return Usage();
    }
    const CacheGcStats gc = RunCacheGc(dir, max_bytes);
    std::printf("cache gc: kept %llu object(s) / %llu bytes, evicted %llu object(s) / "
                "%llu bytes\n",
                static_cast<unsigned long long>(gc.kept_objects),
                static_cast<unsigned long long>(gc.kept_bytes),
                static_cast<unsigned long long>(gc.evicted_objects),
                static_cast<unsigned long long>(gc.evicted_bytes));
    return 0;
  }

  if (command == "match") {
    if (argc < 4) {
      return Usage();
    }
    CliFlags flags;
    if (!ParseFlags(argc, argv, 4, flags)) {
      return Usage();
    }
    const auto tmpl = ParseTemplate(argv[3]);
    if (!tmpl.has_value()) {
      std::fprintf(stderr, "cannot parse template: %s\n", argv[3]);
      return kExitUsage;
    }
    LoadOptions load_options;
    load_options.jobs = flags.jobs;
    const SourceTree tree = LoadSourceTreeFromDisk(argv[2], load_options);
    if (tree.size() == 0) {
      std::fprintf(stderr, "no C sources found under %s\n", argv[2]);
      return kExitHardFailure;
    }
    ScanOptions options;
    options.jobs = flags.jobs;
    const auto reports = RunTemplateChecker(*tmpl, tree, KnowledgeBase::BuiltIn(), options);
    for (const BugReport& r : reports) {
      std::printf("%s:%u: [template] %s in %s() (object '%s')\n", r.file.c_str(), r.line,
                  r.template_path.c_str(), r.function.c_str(), r.object.c_str());
    }
    std::printf("%zu match(es).\n", reports.size());
    return reports.empty() ? kExitClean : kExitReports;
  }

  if (command == "dump") {
    if (argc < 3) {
      return Usage();
    }
    std::FILE* f = std::fopen(argv[2], "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", argv[2]);
      return kExitHardFailure;
    }
    std::string text;
    char buffer[4096];
    size_t n;
    while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
      text.append(buffer, n);
    }
    std::fclose(f);
    const SourceFile file(argv[2], std::move(text));
    const std::string stage = argc > 3 ? argv[3] : "cpg";
    if (stage == "tokens") {
      std::printf("%s", DumpTokens(file).c_str());
      return 0;
    }
    const TranslationUnit unit = ParseFile(file);
    if (stage == "ast") {
      std::printf("%s", DumpAst(unit).c_str());
      return 0;
    }
    KnowledgeBase kb = KnowledgeBase::BuiltIn();
    kb.DiscoverFromUnit(unit);
    kb.DiscoverFromUnit(unit);
    for (const FunctionDef& fn : unit.functions) {
      const Cfg cfg = BuildCfg(fn);
      if (stage == "cfg") {
        std::printf("%s\n", DumpCfg(cfg).c_str());
        continue;
      }
      const Cpg cpg = BuildCpg(cfg, kb);
      std::printf("== %s ==\n%s\n", fn.name.c_str(), DumpCpg(cpg).c_str());
    }
    return 0;
  }

  if (command == "summaries") {
    if (argc < 3) {
      return Usage();
    }
    CliFlags flags;
    if (!ParseFlags(argc, argv, 3, flags)) {
      return Usage();
    }
    std::vector<std::string> errors;
    LoadOptions load_options;
    load_options.jobs = flags.jobs;
    const SourceTree tree = LoadSourceTreeFromDisk(argv[2], load_options, &errors);
    for (const std::string& error : errors) {
      std::fprintf(stderr, "warning: %s\n", error.c_str());
    }
    if (tree.size() == 0) {
      std::fprintf(stderr, "no C sources found under %s\n", argv[2]);
      return kExitHardFailure;
    }
    // Same front half as a scan: parse everything, run the two-round
    // discovery pass, then compute and dump the summaries.
    std::vector<const SourceFile*> files;
    for (const auto& [path, file] : tree.files()) {
      files.push_back(&file);
    }
    ThreadPool pool(flags.jobs);
    const std::vector<TranslationUnit> units =
        ParallelMap(pool, files.size(), [&](size_t i) { return ParseFile(*files[i]); });
    KnowledgeBase kb = KnowledgeBase::BuiltIn();
    for (int round = 0; round < 2; ++round) {
      for (const TranslationUnit& unit : units) {
        kb.DiscoverFromUnit(unit);
      }
    }
    std::vector<const TranslationUnit*> unit_ptrs;
    for (const TranslationUnit& unit : units) {
      unit_ptrs.push_back(&unit);
    }
    const SummaryResult result = ComputeSummaries(unit_ptrs, kb, SummaryOptions{}, pool);
    std::printf("%s", (flags.json ? SummariesToJson(result) : SummariesToText(result)).c_str());
    return 0;
  }

  if (command == "scan" || command == "deviations" || command == "stats") {
    if (argc < 3) {
      return Usage();
    }
    CliFlags flags;
    if (!ParseFlags(argc, argv, 3, flags)) {
      return Usage();
    }
    if (command == "stats") {
      flags.stats = true;
      flags.stats_only = true;
    }
    // Arm --faults process-wide before the tree load so fs.read rules fire
    // during it (ScanOptions::fault_spec would only cover the engine). A
    // malformed spec on the command line is a usage error (the env-var
    // variant stays a hard failure: nothing was typed to correct).
    if (!flags.fault_spec.empty()) {
      FaultPlan plan;
      std::string fault_error;
      if (!ParseFaultSpec(flags.fault_spec, plan, &fault_error)) {
        std::fprintf(stderr, "bad --faults spec: %s\n", fault_error.c_str());
        return kExitUsage;
      }
      ArmFaults(std::move(plan));
    }
    // Arm a telemetry session around the whole run (load + scan) when any
    // export was requested, and disarm before writing: no span can still be
    // in flight when the buffers are read.
    Telemetry session;
    std::optional<ScopedTelemetry> telemetry_arm;
    if (!flags.trace_out.empty() || !flags.metrics_out.empty()) {
      telemetry_arm.emplace(session);
    }
    std::vector<LoadFailure> load_failures;
    LoadStats load_stats;
    LoadOptions load_options;
    load_options.jobs = flags.jobs;
    load_options.use_mmap = flags.use_mmap;
    const SourceTree tree =
        LoadSourceTreeFromDisk(argv[2], load_options, &load_failures, &load_stats);
    for (const LoadFailure& f : load_failures) {
      std::fprintf(stderr, "warning: %s: %s\n", f.path.c_str(), f.what.c_str());
    }
    if (tree.size() == 0) {
      std::fprintf(stderr, "no C sources found under %s\n", argv[2]);
      return kExitHardFailure;
    }
    if (command == "deviations") {
      const auto reports = DetectDeviations(tree, KnowledgeBase::BuiltIn(), flags.jobs);
      for (const DeviationReport& r : reports) {
        std::printf("%s:%u: [%s%s] %s\n", r.file.c_str(), r.line,
                    std::string(DeviationKindName(r.kind)).c_str(), r.hidden ? ", hidden" : "",
                    r.note.c_str());
      }
      std::printf("%zu deviant API(s).\n", reports.size());
      return reports.empty() ? kExitClean : kExitReports;
    }
    int rc = RunScan(tree, flags, load_failures, load_stats);
    telemetry_arm.reset();
    if (!flags.trace_out.empty() && !WriteTextFile(flags.trace_out, session.TraceToChromeJson())) {
      return kExitHardFailure;
    }
    if (!flags.metrics_out.empty() &&
        !WriteTextFile(flags.metrics_out, session.MetricsToPrometheusText())) {
      return kExitHardFailure;
    }
    if (command == "stats" && rc == kExitReports) {
      rc = kExitClean;  // reports are not what `stats` asks about
    }
    return rc;
  }

  return Usage();
}

}  // namespace

int main(int argc, char** argv) {
  // REFSCAN_FAULTS arms the fault-injection registry for the whole run (the
  // CI fault-matrix uses this). A malformed spec fails loudly: silently
  // running un-faulted would make injection-based jobs pass vacuously.
  std::string fault_error;
  if (!refscan::ArmFaultsFromEnv(&fault_error)) {
    std::fprintf(stderr, "refscan: bad REFSCAN_FAULTS: %s\n", fault_error.c_str());
    return 1;
  }
  try {
    return RealMain(argc, argv);
  } catch (const std::exception& e) {
    // Last-resort barrier: per-file sandboxes should have contained
    // anything recoverable, so whatever reaches here is a hard failure.
    std::fprintf(stderr, "refscan: fatal: %s\n", e.what());
    return 1;
  }
}
