// refscan — command-line front end.
//
//   refscan scan <dir> [--fix] [--no-discovery]   scan a C tree on disk
//   refscan match <dir> "<template>"              run a custom semantic template
//   refscan dump <file.c> [tokens|ast|cfg|cpg]    inspect front-end stages
//   refscan deviations <dir>                      find deviant refcounting APIs
//   refscan demo                                  scan the built-in synthetic kernel corpus
//
// Exit code: number of bug reports, capped at 125 (0 = clean).

#include <cstdio>
#include <cstring>
#include <string>

#include "src/checkers/engine.h"
#include "src/checkers/fixes.h"
#include "src/checkers/template_matcher.h"
#include "src/checkers/templates.h"
#include "src/ast/parser.h"
#include "src/corpus/generator.h"
#include "src/cpg/dump.h"
#include "src/kb/deviations.h"
#include "src/support/fs.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  refscan scan <dir> [--fix] [--json] [--no-discovery]\n"
               "  refscan match <dir> \"<template>\"   e.g. \"F_start -> S_P(p0) -> S_D(p0) -> F_end\"\n"
               "  refscan dump <file.c> [tokens|ast|cfg|cpg]\n"
               "  refscan deviations <dir>\n"
               "  refscan demo\n");
  return 2;
}

int RunScan(const refscan::SourceTree& tree, bool print_fixes, bool discovery,
            bool json = false) {
  using namespace refscan;
  ScanOptions options;
  options.discover_from_source = discovery;
  CheckerEngine engine(KnowledgeBase::BuiltIn(), options);
  const ScanResult result = engine.Scan(tree);

  if (json) {
    std::printf("%s", ReportsToJson(result.reports).c_str());
    return static_cast<int>(std::min<size_t>(result.reports.size(), 125));
  }

  std::printf("scanned %zu files, %zu functions (%zu refcounting APIs known, "
              "%zu smartloops)\n\n",
              result.stats.files, result.stats.functions, result.stats.discovered_apis,
              result.stats.discovered_smart_loops);

  for (const BugReport& r : result.reports) {
    std::printf("%s:%u: [P%d %s/%s] %s\n", r.file.c_str(), r.line, r.anti_pattern,
                std::string(AntiPatternName(r.anti_pattern)).c_str(),
                std::string(ImpactName(r.impact)).c_str(), r.message.c_str());
    std::printf("    function: %s   template: %s\n", r.function.c_str(),
                r.template_path.c_str());
    if (print_fixes) {
      const SourceFile* file = tree.Find(r.file);
      if (file != nullptr) {
        const FixSuggestion fix = SuggestFix(r, *file);
        if (fix.available) {
          std::printf("    suggested patch: %s\n%s", fix.summary.c_str(), fix.diff.c_str());
        } else {
          std::printf("    (no mechanical fix: %s)\n", fix.summary.c_str());
        }
      }
    }
    std::printf("\n");
  }
  std::printf("%zu report(s).\n", result.reports.size());
  return static_cast<int>(std::min<size_t>(result.reports.size(), 125));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace refscan;

  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];

  if (command == "demo") {
    std::printf("generating the synthetic kernel corpus and scanning it...\n\n");
    const Corpus corpus = GenerateKernelCorpus();
    return RunScan(corpus.tree, /*print_fixes=*/false, /*discovery=*/true) > 0 ? 1 : 0;
  }

  if (command == "match") {
    if (argc < 4) {
      return Usage();
    }
    const auto tmpl = ParseTemplate(argv[3]);
    if (!tmpl.has_value()) {
      std::fprintf(stderr, "cannot parse template: %s\n", argv[3]);
      return 2;
    }
    const SourceTree tree = LoadSourceTreeFromDisk(argv[2]);
    if (tree.size() == 0) {
      std::fprintf(stderr, "no C sources found under %s\n", argv[2]);
      return 2;
    }
    const auto reports = RunTemplateChecker(*tmpl, tree);
    for (const BugReport& r : reports) {
      std::printf("%s:%u: [template] %s in %s() (object '%s')\n", r.file.c_str(), r.line,
                  r.template_path.c_str(), r.function.c_str(), r.object.c_str());
    }
    std::printf("%zu match(es).\n", reports.size());
    return static_cast<int>(std::min<size_t>(reports.size(), 125));
  }

  if (command == "dump") {
    if (argc < 3) {
      return Usage();
    }
    std::vector<std::string> errors;
    LoadOptions load;
    load.skip_dirs.clear();
    // Load the single file via its parent directory, then find it.
    std::FILE* f = std::fopen(argv[2], "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", argv[2]);
      return 2;
    }
    std::string text;
    char buffer[4096];
    size_t n;
    while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
      text.append(buffer, n);
    }
    std::fclose(f);
    const SourceFile file(argv[2], std::move(text));
    const std::string stage = argc > 3 ? argv[3] : "cpg";
    if (stage == "tokens") {
      std::printf("%s", DumpTokens(file).c_str());
      return 0;
    }
    const TranslationUnit unit = ParseFile(file);
    if (stage == "ast") {
      std::printf("%s", DumpAst(unit).c_str());
      return 0;
    }
    KnowledgeBase kb = KnowledgeBase::BuiltIn();
    kb.DiscoverFromUnit(unit);
    kb.DiscoverFromUnit(unit);
    for (const FunctionDef& fn : unit.functions) {
      const Cfg cfg = BuildCfg(fn);
      if (stage == "cfg") {
        std::printf("%s\n", DumpCfg(cfg).c_str());
        continue;
      }
      const Cpg cpg = BuildCpg(cfg, kb);
      std::printf("== %s ==\n%s\n", fn.name.c_str(), DumpCpg(cpg).c_str());
    }
    return 0;
  }

  if (command == "scan" || command == "deviations") {
    if (argc < 3) {
      return Usage();
    }
    bool print_fixes = false;
    bool discovery = true;
    bool json = false;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--fix") == 0) {
        print_fixes = true;
      } else if (std::strcmp(argv[i], "--no-discovery") == 0) {
        discovery = false;
      } else if (std::strcmp(argv[i], "--json") == 0) {
        json = true;
      } else {
        return Usage();
      }
    }
    std::vector<std::string> errors;
    const SourceTree tree = LoadSourceTreeFromDisk(argv[2], LoadOptions{}, &errors);
    for (const std::string& error : errors) {
      std::fprintf(stderr, "warning: %s\n", error.c_str());
    }
    if (tree.size() == 0) {
      std::fprintf(stderr, "no C sources found under %s\n", argv[2]);
      return 2;
    }
    if (command == "deviations") {
      const auto reports = DetectDeviations(tree);
      for (const DeviationReport& r : reports) {
        std::printf("%s:%u: [%s%s] %s\n", r.file.c_str(), r.line,
                    std::string(DeviationKindName(r.kind)).c_str(), r.hidden ? ", hidden" : "",
                    r.note.c_str());
      }
      std::printf("%zu deviant API(s).\n", reports.size());
      return reports.empty() ? 0 : 1;
    }
    return RunScan(tree, print_fixes, discovery, json);
  }

  return Usage();
}
