// Generate patches for every bug found in the synthetic kernel corpus, the
// way the paper's authors sent a patch for each of the 351 new bugs (§6.4),
// and verify each patch by re-scanning the patched file.
//
//   ./build/examples/suggest_patches [--show N]   (default: show 3 patches)

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/checkers/engine.h"
#include "src/checkers/fixes.h"
#include "src/corpus/generator.h"

int main(int argc, char** argv) {
  using namespace refscan;

  int show = 3;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--show") == 0) {
      show = std::atoi(argv[i + 1]);
    }
  }

  std::printf("scanning the synthetic kernel corpus...\n");
  const Corpus corpus = GenerateKernelCorpus();
  CheckerEngine engine;
  const ScanResult result = engine.Scan(corpus.tree);
  std::printf("  %zu reports\n\n", result.reports.size());

  int mechanical = 0;
  int manual = 0;
  int verified = 0;
  int shown = 0;
  for (const BugReport& r : result.reports) {
    const SourceFile* file = corpus.tree.Find(r.file);
    if (file == nullptr) {
      continue;
    }
    const FixSuggestion fix = SuggestFix(r, *file);
    if (!fix.available) {
      ++manual;
      continue;
    }
    ++mechanical;

    // Verify: apply the patch and re-scan the patched file in isolation.
    const std::string patched = ApplyUnifiedDiff(*file, fix.diff);
    bool gone = false;
    if (patched != file->text()) {
      CheckerEngine recheck;
      const ScanResult after = recheck.ScanFileText(r.file, patched);
      gone = true;
      for (const BugReport& rr : after.reports) {
        if (rr.function == r.function && rr.anti_pattern == r.anti_pattern) {
          gone = false;
        }
      }
    }
    verified += gone ? 1 : 0;

    if (shown < show) {
      ++shown;
      std::printf("--------------------------------------------------------------\n");
      std::printf("[P%d] %s\n", r.anti_pattern, fix.summary.c_str());
      std::printf("%s\n\n%s\n", fix.explanation.c_str(), fix.diff.c_str());
    }
  }

  std::printf("--------------------------------------------------------------\n");
  std::printf("patches: %d mechanical (%d verified by re-scan), %d need manual placement "
              "(inter-procedural P6 releases)\n",
              mechanical, verified, manual);
  std::printf("paper: a patch was sent for each of the 351 bugs; 240 were applied to mainline.\n");
  return 0;
}
