// Scan a full (synthetic) kernel tree with the anti-pattern checkers — the
// paper's §6 experiment end-to-end: generate the Table-5-calibrated corpus,
// run all nine checkers, and summarise what was found per anti-pattern with
// a per-subsystem breakdown.
//
//   ./build/examples/scan_kernel_tree [seed] [jobs]
//
// `jobs` is the scan parallelism (0 = one thread per hardware thread, the
// default); the report list is identical at every thread count.

#include <cstdio>
#include <cstdlib>
#include <map>

#include "src/checkers/engine.h"
#include "src/checkers/templates.h"
#include "src/corpus/generator.h"
#include "src/report/table.h"
#include "src/support/strings.h"
#include "src/support/threadpool.h"

int main(int argc, char** argv) {
  using namespace refscan;

  CorpusOptions options;
  if (argc > 1) {
    options.seed = static_cast<uint64_t>(std::strtoull(argv[1], nullptr, 10));
  }
  size_t jobs = 0;  // all hardware threads
  if (argc > 2) {
    jobs = static_cast<size_t>(std::strtoull(argv[2], nullptr, 10));
  }

  std::printf("generating the synthetic kernel tree (seed %llu)...\n",
              static_cast<unsigned long long>(options.seed));
  const Corpus corpus = GenerateKernelCorpus(options);
  std::printf("  %zu files, %llu total lines, %zu planted bugs, %zu planted FP shapes\n\n",
              corpus.tree.size(), static_cast<unsigned long long>(corpus.tree.LinesUnder("")),
              corpus.ground_truth.size(), corpus.planted_fps.size());

  ScanOptions scan_options;
  scan_options.jobs = jobs;
  CheckerEngine engine(KnowledgeBase::BuiltIn(), scan_options);
  const ScanResult result = engine.Scan(corpus.tree);
  std::printf("scan (%zu threads): %zu files, %zu functions, %zu known/discovered "
              "refcounting APIs, %zu smartloops\n\n",
              ThreadPool::ResolveJobs(jobs), result.stats.files, result.stats.functions,
              result.stats.discovered_apis, result.stats.discovered_smart_loops);

  std::map<int, int> per_pattern;
  std::map<std::string, int> per_subsystem;
  int true_positives = 0;
  for (const BugReport& r : result.reports) {
    per_pattern[r.anti_pattern]++;
    per_subsystem[SplitKernelPath(r.file).subsystem]++;
    if (corpus.FindBug(r.file, r.function) != nullptr) {
      ++true_positives;
    }
  }

  Table table("Reports per anti-pattern");
  table.Header({"Pattern", "Name", "Template", "Reports"},
               {Align::kLeft, Align::kLeft, Align::kLeft, Align::kRight});
  for (int p = 1; p <= 9; ++p) {
    table.Row({StrFormat("P%d", p), std::string(AntiPatternName(p)),
               AntiPatternTemplate(p), StrFormat("%d", per_pattern[p])});
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf("per subsystem:");
  for (const auto& [subsystem, count] : per_subsystem) {
    std::printf(" %s=%d", subsystem.c_str(), count);
  }
  std::printf("\n\nground truth: %d/%zu planted bugs detected; %zu extra reports "
              "(the planted Listing-5 false-positive shapes).\n",
              true_positives, corpus.ground_truth.size(),
              result.reports.size() - static_cast<size_t>(true_positives));

  std::printf("\nfirst five reports:\n");
  size_t shown = 0;
  for (const BugReport& r : result.reports) {
    if (++shown > 5) {
      break;
    }
    std::printf("  %s:%u [P%d] %s\n", r.file.c_str(), r.line, r.anti_pattern,
                r.message.c_str());
  }
  return 0;
}
