// Mine the refcounting bug dataset from a (synthetic) kernel git history —
// the paper's §3.1 methodology end-to-end: synthesise the commit stream,
// run the two-level keyword/implementation filter, remove wrong-fix false
// positives via Fixes: tags, and print the resulting dataset's headline
// statistics (Findings 1-5).
//
//   ./build/examples/mine_history [noise_commits]

#include <cstdio>
#include <cstdlib>

#include "src/histmine/miner.h"
#include "src/report/table.h"
#include "src/stats/stats.h"
#include "src/support/strings.h"

int main(int argc, char** argv) {
  using namespace refscan;

  HistoryOptions options;
  options.noise_commits = argc > 1 ? std::atoi(argv[1]) : 40000;

  std::printf("synthesising kernel history (%d noise commits + calibrated population)...\n",
              options.noise_commits);
  const History history = GenerateHistory(options);
  std::printf("  %zu commits across %zu mainline releases (v2.6.12..v6.1, %d versions "
              "counting stable releases)\n\n",
              history.commits.size(), ReleaseTimeline().size(), TotalVersionCount());

  // jobs=0: fan the per-commit filtering/classification out over every
  // hardware thread (the mined dataset is identical at any thread count).
  const MiningResult result = MineRefcountBugs(history, KnowledgeBase::BuiltIn(), /*jobs=*/0);

  Table pipeline("Two-level filtering pipeline (§3.1)");
  pipeline.Header({"Stage", "Paper", "Measured"}, {Align::kLeft, Align::kRight, Align::kRight});
  pipeline.Row({"Commit logs scanned", "~1,000,000", StrFormat("%zu", result.total_commits)});
  pipeline.Row({"Level-1 keyword candidates", "1,825",
                StrFormat("%zu", result.level1_candidates.size())});
  pipeline.Row({"Level-2 implementation-confirmed", "-",
                StrFormat("%zu", result.level2_candidates.size())});
  pipeline.Row({"Removed as wrong fixes (Fixes: tags)", "-",
                StrFormat("%zu", result.removed_as_wrong_fix.size())});
  pipeline.Row({"Final dataset", "1,033", StrFormat("%zu", result.dataset.size())});
  std::printf("%s\n", pipeline.Render().c_str());

  const Taxonomy tax = TaxonomyBreakdown(result.dataset);
  std::printf("Finding 1: %s of bugs lead to memory leaks (paper 71.7%%)\n",
              Pct(tax.Fraction(tax.leak)).c_str());
  std::printf("Finding 2: %s lead to UAF, %s are UAD (paper 28.3%% / 9.1%%)\n",
              Pct(tax.Fraction(tax.uaf)).c_str(), Pct(tax.Fraction(tax.uad)).c_str());

  const auto breakdown = SubsystemBreakdown(result.dataset);
  std::printf("Finding 3: '%s' holds %s of all bugs (paper: drivers, 56.9%%)\n",
              breakdown[0].name.c_str(),
              Pct(static_cast<double>(breakdown[0].bugs) / tax.total).c_str());

  const LifetimeStats life = LifetimeAnalysis(result.dataset);
  std::printf("Finding 4: %s of tagged bugs lived > 1 year; %d lived > 10 years "
              "(paper 75.7%% / 19)\n",
              Pct(static_cast<double>(life.over_one_year) / std::max(1, life.with_fixes_tag))
                  .c_str(),
              life.over_ten_years);
  std::printf("Finding 5: %d bugs span v2.6 -> v5.x/v6.x (paper 23)\n\n",
              life.ancient_to_modern);

  std::printf("example mined commits:\n");
  for (size_t i = 0; i < result.dataset.size() && i < 5; ++i) {
    const MinedBug& bug = result.dataset[i];
    std::printf("  %s %s (%s, fixed in %s)\n", bug.commit->id.c_str(),
                bug.commit->subject.c_str(), bug.is_leak ? "leak" : "UAF",
                ReleaseTimeline()[static_cast<size_t>(bug.fixed_release)].name.c_str());
  }
  return 0;
}
