// Explore keyword similarities the way §5.2 does: train the from-scratch
// word2vec on the synthetic commit logs + corpus code and query it.
//
//   ./build/examples/similarity_explorer            # preset queries
//   ./build/examples/similarity_explorer find put   # similarity of a pair
//   ./build/examples/similarity_explorer find       # nearest neighbours

#include <cstdio>
#include <string>

#include "src/corpus/generator.h"
#include "src/embed/corpus_text.h"
#include "src/embed/word2vec.h"
#include "src/histmine/history.h"

int main(int argc, char** argv) {
  using namespace refscan;

  std::printf("training word2vec (CBOW) on synthetic commit logs + corpus source...\n");
  HistoryOptions history_options;
  history_options.noise_commits = 20000;
  const History history = GenerateHistory(history_options);
  std::vector<std::vector<std::string>> sentences = BuildCommitSentences(history);
  const Corpus corpus = GenerateKernelCorpus();
  AppendSourceSentences(corpus.tree, sentences);

  Word2Vec model;
  EmbedOptions options;
  options.epochs = 4;
  model.Train(sentences, options);
  std::printf("  %zu sentences, vocabulary %zu words\n\n", sentences.size(),
              model.vocab_size());

  if (argc == 3) {
    std::printf("similarity(%s, %s) = %.3f\n", argv[1], argv[2],
                model.Similarity(argv[1], argv[2]));
    return 0;
  }
  if (argc == 2) {
    std::printf("nearest neighbours of '%s':\n", argv[1]);
    for (const auto& [word, sim] : model.MostSimilar(argv[1], 10)) {
      std::printf("  %-16s %.3f\n", word.c_str(), sim);
    }
    return 0;
  }

  std::printf("why hidden refcounting bites (§5.2): the words developers see...\n");
  for (const char* keyword : {"find", "parse", "foreach", "probe"}) {
    std::printf("  '%s' vs get=%.2f put=%.2f refcount=%.2f\n", keyword,
                model.Similarity(keyword, "get"), model.Similarity(keyword, "put"),
                model.Similarity(keyword, "refcount"));
  }
  std::printf("\n...versus the refcounting vocabulary itself:\n");
  std::printf("  'get' vs put=%.2f hold=%.2f release=%.2f\n", model.Similarity("get", "put"),
              model.Similarity("get", "hold"), model.Similarity("get", "release"));
  return 0;
}
