// Quickstart: scan a snippet of kernel-style C for refcounting bugs.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart
//
// The engine parses the code with refscan's tolerant C front end, annotates
// it with semantic refcounting events, and matches the nine anti-patterns
// from the SOSP'23 study. Pass a file path to scan your own C file instead.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/checkers/engine.h"
#include "src/checkers/templates.h"

namespace {

constexpr const char* kDemoCode = R"c(
// A condensed version of the paper's Listing 3: pm_runtime_get_sync()
// raises the usage counter even when it fails, so the early return leaks.
static int stm32_crc_remove(struct platform_device *pdev)
{
	struct stm32_crc *crc = platform_get_drvdata(pdev);
	int ret = pm_runtime_get_sync(crc->dev);

	if (ret < 0)
		return ret;

	crc_shutdown(crc);
	pm_runtime_put(crc->dev);
	return 0;
}

// And the paper's Listing 4: breaking out of a device-tree smartloop
// without releasing the iterator node.
static int brcmstb_pm_probe(struct platform_device *pdev)
{
	struct device_node *dn;

	for_each_matching_node(dn, aon_ctrl_dt_ids) {
		if (of_device_is_compatible(dn, "brcm,aon"))
			break;
	}
	return 0;
}
)c";

}  // namespace

int main(int argc, char** argv) {
  using namespace refscan;

  std::string path = "demo.c";
  std::string code = kDemoCode;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    code = buffer.str();
    path = argv[1];
  }

  CheckerEngine engine;  // built-in kernel API knowledge + source discovery
  const ScanResult result = engine.ScanFileText(path, code);

  std::printf("scanned %zu function(s); %zu refcounting APIs known to the KB\n\n",
              result.stats.functions, result.stats.discovered_apis);
  if (result.reports.empty()) {
    std::printf("no refcounting anti-pattern instances found.\n");
    return 0;
  }
  for (const BugReport& r : result.reports) {
    std::printf("%s:%u: [P%d %s] %s\n", r.file.c_str(), r.line, r.anti_pattern,
                std::string(AntiPatternName(r.anti_pattern)).c_str(),
                std::string(ImpactName(r.impact)).c_str());
    std::printf("    in %s(): %s\n", r.function.c_str(), r.message.c_str());
    std::printf("    template: %s\n\n", r.template_path.c_str());
  }
  return 0;
}
